"""Tests for DOT / plain-text export of digraphs and OTIS wirings."""

from repro.core.alphabet_digraph import alphabet_digraph
from repro.graphs.drawing import (
    adjacency_listing,
    otis_wiring_dot,
    otis_wiring_text,
    to_dot,
)
from repro.graphs.generators import de_bruijn, imase_itoh


class TestToDot:
    def test_debruijn_dot_contains_word_labels(self):
        dot = to_dot(de_bruijn(2, 3))
        assert dot.startswith('digraph "B(2,3)"')
        assert 'label="000"' in dot
        assert 'label="111"' in dot
        # 16 arcs => 16 edge lines
        assert dot.count("->") == 16
        assert dot.rstrip().endswith("}")

    def test_unlabelled_digraph_uses_indices(self):
        dot = to_dot(imase_itoh(2, 8))
        assert 'label="0"' in dot and 'label="7"' in dot

    def test_custom_labels_and_highlight(self):
        dot = to_dot(
            de_bruijn(2, 2),
            name="custom",
            vertex_label=lambda u: f"x{u}",
            highlight=[0, 3],
        )
        assert 'digraph "custom"' in dot
        assert 'label="x0"' in dot
        assert dot.count("fillcolor") == 2

    def test_figure_5_component_highlight(self):
        from repro.permutations import Permutation, identity

        graph = alphabet_digraph(2, 3, Permutation([2, 1, 0]), identity(2), 1)
        dot = to_dot(graph, highlight=[1, 3, 4, 6])
        assert dot.count("fillcolor") == 4

    def test_adjacency_listing(self):
        text = adjacency_listing(de_bruijn(2, 2))
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0] == "00 -> 00, 01"
        assert lines[3] == "11 -> 10, 11"


class TestOTISWiring:
    def test_wiring_dot_figure_6(self):
        dot = otis_wiring_dot(3, 6)
        # 18 transmitters + 18 receivers declared, 18 beams
        assert dot.count('[label="T(') == 18
        assert dot.count('[label="R(') == 18
        assert dot.count("->") == 18
        # the defining connection of the architecture
        assert "t_0_0 -> r_5_2;" in dot

    def test_wiring_text(self):
        text = otis_wiring_text(3, 6)
        assert "OTIS(3,6): 18 beams, 9 lenses" in text.splitlines()[0]
        assert "T(0,0)" in text and "R(5,2)" in text
        assert len(text.splitlines()) == 19
