"""Tests for OTIS layouts of de Bruijn-like digraphs (Section 4.4)."""

import numpy as np
import pytest

from repro.otis.h_digraph import h_digraph
from repro.otis.layout import (
    OTISLayout,
    debruijn_layout,
    find_layout_by_search,
    imase_itoh_layout,
    kautz_layout,
    optimal_debruijn_layout,
)


class TestDebruijnLayout:
    def test_even_diameter_optimal(self):
        # Corollary 4.4: B(2, 8) on OTIS(16, 32) with 48 lenses.
        layout = optimal_debruijn_layout(2, 8)
        assert (layout.p, layout.q) == (16, 32)
        assert layout.num_lenses == 48
        assert layout.num_nodes == 256
        assert layout.verify()

    def test_small_even_diameters_verify(self):
        for d, D in [(2, 2), (2, 4), (2, 6), (3, 2), (3, 4)]:
            layout = optimal_debruijn_layout(d, D)
            assert layout.verify()
            assert layout.num_lenses == (1 + d) * d ** (D // 2)

    def test_odd_diameter_verifies(self):
        layout = optimal_debruijn_layout(2, 5)
        assert layout.verify()
        assert layout.p * layout.q == 2 * 2**5

    def test_explicit_split(self):
        layout = debruijn_layout(2, 6, 2, 5)
        assert (layout.p, layout.q) == (4, 32)
        assert layout.verify()

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            debruijn_layout(2, 6, 3, 3)  # p' + q' - 1 != D
        with pytest.raises(ValueError):
            debruijn_layout(2, 8, 3, 6)  # non-cyclic f (paper Section 4.3)

    def test_lens_efficiency_constant_for_even_D(self):
        for D in (4, 6, 8):
            layout = optimal_debruijn_layout(2, D)
            assert layout.lens_efficiency == pytest.approx(3.0)

    def test_node_assignment_and_transmitter_map(self):
        layout = optimal_debruijn_layout(2, 4)
        assignment = layout.node_assignment(3)
        assert len(assignment.transmitters) == 2
        tmap = layout.transmitter_map()
        assert tmap.shape == (16, 2, 2)
        # transmitters across all nodes cover the whole optical plane
        flat = {tuple(x) for x in tmap.reshape(-1, 2)}
        assert len(flat) == 32

    def test_summary(self):
        layout = optimal_debruijn_layout(2, 4)
        summary = layout.summary()
        assert summary["nodes"] == 16
        assert summary["lenses"] == layout.num_lenses
        assert "Corollary" in summary["description"]


class TestKnownLayouts:
    def test_imase_itoh_layout_verifies(self):
        for d, n in [(2, 8), (2, 12), (3, 27), (2, 20)]:
            layout = imase_itoh_layout(d, n)
            assert layout.verify()
            assert layout.num_lenses == d + n  # the O(n)-lens baseline

    def test_kautz_layout_verifies(self):
        layout = kautz_layout(2, 3)
        assert layout.verify()
        assert layout.num_nodes == 12
        assert (layout.p, layout.q) == (2, 12)

    def test_lens_comparison_paper_headline(self):
        # The paper's point: Theta(sqrt(n)) lenses vs O(n) lenses for B(2, 8).
        optimal = optimal_debruijn_layout(2, 8)
        baseline_lenses = 2 + 256  # II(2, 256) layout
        assert optimal.num_lenses == 48
        assert optimal.num_lenses < baseline_lenses / 5


class TestLayoutSearchBaseline:
    def test_search_finds_debruijn_layout(self):
        from repro.graphs.generators import de_bruijn

        layout = find_layout_by_search(de_bruijn(2, 3))
        assert layout is not None
        assert layout.verify()
        assert layout.p * layout.q == 16

    def test_search_none_for_unlayoutable_graph(self):
        # A 3-cycle with a chord of degree... use a digraph whose degree
        # divides nothing nicely: the directed 5-cycle has d=1, m=5 and the
        # only splits are (1,5)/(5,1); H(1,5,1)/H(5,1,1) are single cycles
        # too, so a layout exists.  Use instead a degree-1 digraph that is
        # NOT a single cycle: two disjoint cycles cannot be H(p, q, 1) of the
        # same size unless the wiring matches; check the search stays exact.
        from repro.graphs.digraph import RegularDigraph

        two_cycles = RegularDigraph([[1], [0], [3], [2]])
        result = find_layout_by_search(two_cycles)
        # H(p, q, 1) on 4 nodes is a permutation digraph; whether a layout
        # exists is decided exactly by the search — verify whatever it says.
        if result is None:
            from repro.graphs.isomorphism import are_isomorphic
            from repro.otis.h_digraph import h_digraph_splits

            for p, q in h_digraph_splits(4, 1):
                assert not are_isomorphic(two_cycles, h_digraph(p, q, 1))
                assert not are_isomorphic(two_cycles, h_digraph(q, p, 1))
        else:
            assert result.verify()

    def test_structural_layout_matches_search_lens_count(self):
        # For B(2, 4) the structural optimum must be at least as good as the
        # brute-force search's first hit.
        from repro.graphs.generators import de_bruijn

        structural = optimal_debruijn_layout(2, 4)
        searched = find_layout_by_search(de_bruijn(2, 4))
        assert searched is not None
        assert structural.num_lenses <= searched.num_lenses


class TestOTISLayoutValidation:
    def test_verify_detects_bad_mapping(self):
        layout = optimal_debruijn_layout(2, 4)
        bad = OTISLayout(
            graph=layout.graph,
            p=layout.p,
            q=layout.q,
            d=layout.d,
            node_to_h=np.roll(layout.node_to_h, 1),
            description="corrupted",
        )
        assert not bad.verify()

    def test_h_cached(self):
        layout = optimal_debruijn_layout(2, 4)
        assert layout.h() is layout.h()
