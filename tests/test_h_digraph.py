"""Tests for the OTIS-induced digraph H(p, q, d) (Section 4.2, Figures 7–8)."""

import numpy as np
import pytest

from repro.graphs.generators import de_bruijn, imase_itoh, kautz
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.properties import diameter
from repro.otis.architecture import OTISArchitecture
from repro.otis.h_digraph import (
    h_digraph,
    h_digraph_splits,
    otis_node_assignment,
)
from repro.words import word_to_int


class TestConstruction:
    def test_counts(self):
        H = h_digraph(4, 8, 2)
        assert H.num_vertices == 16
        assert H.degree == 2
        assert H.is_regular()

    def test_d_must_divide(self):
        with pytest.raises(ValueError):
            h_digraph(3, 5, 2)
        with pytest.raises(ValueError):
            h_digraph(0, 4, 2)

    def test_figure_7_adjacency(self):
        # H(4, 8, 2): Gamma+(x3 x2 x1 x0) = complement(x1) complement(x0) lam complement(x3)
        H = h_digraph(4, 8, 2)
        assert set(H.out_neighbors(word_to_int((0, 0, 0, 0), 2))) == {
            word_to_int((1, 1, 0, 1), 2),
            word_to_int((1, 1, 1, 1), 2),
        }
        assert set(H.out_neighbors(word_to_int((1, 0, 1, 1), 2))) == {
            word_to_int((0, 0, 0, 0), 2),
            word_to_int((0, 0, 1, 0), 2),
        }

    def test_figure_8_h_4_8_2_is_debruijn(self):
        assert are_isomorphic(h_digraph(4, 8, 2), de_bruijn(2, 4))
        assert diameter(h_digraph(4, 8, 2)) == 4

    def test_consistency_with_architecture(self):
        # Rebuild H(p, q, d) directly from the OTIS wiring and compare.
        p, q, d = 6, 4, 2
        otis = OTISArchitecture(p, q)
        H = h_digraph(p, q, d)
        n = p * q // d
        for u in range(n):
            expected = set()
            for lam in range(d):
                t = d * u + lam
                i, j = otis.transmitter_coords(t)
                a, b = otis.receiver_of(i, j)
                r = otis.receiver_index(a, b)
                expected.add(r // d)
            assert set(H.out_neighbors(u)) == expected

    def test_imase_itoh_layout_identity(self):
        # H(d, n, d) equals II(d, n) on integer labels (known layout, ref [14]).
        for d, n in [(2, 8), (2, 12), (3, 27), (3, 12), (4, 20)]:
            assert h_digraph(d, n, d).same_arcs(imase_itoh(d, n))

    def test_kautz_has_otis_layout(self):
        # K(2, 3) has 12 nodes and an OTIS(2, 12) layout through II(2, 12).
        assert are_isomorphic(kautz(2, 3), h_digraph(2, 12, 2))

    def test_reverse_layout_relationship(self):
        # If G ~ H(p, q, d) then G reversed ~ H(q, p, d).
        from repro.graphs.operations import reverse

        G = h_digraph(4, 8, 2)
        G_rev = reverse(G)
        assert are_isomorphic(G_rev, h_digraph(8, 4, 2))


class TestSplits:
    def test_h_digraph_splits(self):
        splits = h_digraph_splits(8, 2)
        assert splits == [(1, 16), (2, 8), (4, 4)]
        for p, q in splits:
            assert p * q == 16

    def test_splits_validation(self):
        with pytest.raises(ValueError):
            h_digraph_splits(0, 2)


class TestNodeAssignment:
    def test_assignment_counts(self):
        assignment = otis_node_assignment(4, 8, 2, 5)
        assert assignment.node == 5
        assert len(assignment.transmitters) == 2
        assert len(assignment.receivers) == 2

    def test_assignment_matches_definition(self):
        p, q, d = 4, 8, 2
        for node in (0, 3, 15):
            assignment = otis_node_assignment(p, q, d, node)
            for lam, (i, j) in enumerate(assignment.transmitters):
                t = d * node + lam
                assert (i, j) == (t // q, t % q)
            for lam, (a, b) in enumerate(assignment.receivers):
                r = d * node + lam
                assert (a, b) == (r // p, r % p)

    def test_every_transceiver_assigned_exactly_once(self):
        p, q, d = 4, 8, 2
        n = p * q // d
        transmitters = set()
        receivers = set()
        for node in range(n):
            assignment = otis_node_assignment(p, q, d, node)
            transmitters.update(assignment.transmitters)
            receivers.update(assignment.receivers)
        assert len(transmitters) == p * q
        assert len(receivers) == p * q

    def test_validation(self):
        with pytest.raises(ValueError):
            otis_node_assignment(4, 8, 2, 99)
        with pytest.raises(ValueError):
            otis_node_assignment(3, 5, 2, 0)
