"""Serve-layer suite: registry, protocol, metrics, and end-to-end parity.

The load-bearing contract is **serve adds transport, never arithmetic**:
every batch reply must be bit-identical to querying the underlying router
directly.  The end-to-end classes enforce that over HTTP for all five
families (``B``, ``K``, ``RRK``, ``II``, ``H``) and all three router kinds
(dense table, closed form, LRU rows), for all three ops (next-hop, path,
ETA).  The remaining classes cover the wire-format validation, the registry
hot-reload semantics, the metrics histogram, and the CLI entry points.
"""

import json
import threading

import numpy as np
import pytest

from repro.routing.paths import build_routing_table
from repro.routing.routers import make_router
from repro.serve import (
    BatchQuery,
    LatencyHistogram,
    ProtocolError,
    RouterRegistry,
    ServerThread,
    ServeMetrics,
    build_graph,
    decode_query,
    run_bench,
)
from repro.serve.bench import http_request
from repro.serve.protocol import answer_query, batch_paths
from repro.simulation.network import LinkModel

#: One spec per family, sized so every router kind (dense, closed-form,
#: LRU) can build it — the parity matrix of the end-to-end tests.
FAMILY_SPECS = {
    "B": "B(2,4)",
    "K": "K(2,3)",
    "RRK": "RRK(2,32)",
    "II": "II(2,16)",
    "H": "H(4,8,2)",
}
ROUTER_KINDS = ("dense", "closed-form", "lru")


def topology_name(family: str, kind: str) -> str:
    return f"{family.lower()}-{kind}"


@pytest.fixture(scope="module")
def parity_server():
    """One server hosting every (family, router kind) combination."""
    registry = RouterRegistry()
    for family, spec in FAMILY_SPECS.items():
        for kind in ROUTER_KINDS:
            registry.add(topology_name(family, kind), spec, kind)
    # A long batch window would slow the sequential parity queries; zero
    # windows flush immediately.
    with ServerThread(registry, batch_window_s=0.0005) as server:
        yield server


def query(server, body, path="/v1/query"):
    return http_request(server.host, server.port, "POST", path, body)


class TestBuildGraph:
    def test_families(self):
        assert build_graph("B(2,3)").num_vertices == 8
        assert build_graph("K(2,3)").num_vertices == 12
        assert build_graph("RRK(2,12)").num_vertices == 12
        assert build_graph("II(2,12)").num_vertices == 12
        assert build_graph("H(2,4,2)").num_vertices == 4  # n = p*q/d

    def test_spaces_tolerated(self):
        assert build_graph("H(2, 4, 2)").num_vertices == 4

    @pytest.mark.parametrize(
        "bad", ["X(2,3)", "B(2;3)", "B", "B()", "B(2,3,4)", "H(2,4)"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            build_graph(bad)


class TestRegistry:
    def test_add_and_get(self):
        registry = RouterRegistry()
        entry = registry.add("demo", "B(2,3)", "dense")
        assert registry.get("demo") is entry
        assert entry.version == 1
        assert entry.router.kind == "dense"
        assert registry.names() == ["demo"]

    def test_unchanged_add_is_a_noop(self):
        registry = RouterRegistry()
        first = registry.add("demo", "B(2,3)")
        assert registry.add("demo", "B(2,3)") is first
        assert registry.get("demo").version == 1

    def test_changed_spec_bumps_version(self):
        registry = RouterRegistry()
        registry.add("demo", "B(2,3)")
        entry = registry.add("demo", "B(2,4)")
        assert entry.version == 2
        assert entry.graph.num_vertices == 16

    def test_unknown_router_kind_rejected(self):
        registry = RouterRegistry()
        with pytest.raises(ValueError, match="router kind"):
            registry.add("demo", "B(2,3)", "quantum")

    def test_snapshot_fields(self):
        registry = RouterRegistry()
        registry.add("demo", "B(2,3)", "lru")
        info = registry.snapshot()["demo"]
        assert info["spec"] == "B(2,3)"
        assert info["router"] == "lru"
        assert info["nodes"] == 8
        assert info["version"] == 1
        assert info["state_bytes"] >= 0
        assert "cache_hit_rate" in info

    def test_spec_file_reload(self, tmp_path):
        spec_file = tmp_path / "topologies.json"
        spec_file.write_text(json.dumps({"alpha": "B(2,3)"}))
        registry = RouterRegistry()
        changed = registry.load_spec_file(spec_file)
        assert changed == ["alpha"]
        assert registry.get("alpha").version == 1

        # Unchanged file: reload is a no-op even when forced.
        assert registry.reload(force=True) == []

        # Rewrite: alpha changes spec, beta appears, with explicit router.
        spec_file.write_text(
            json.dumps(
                {
                    "alpha": "B(2,4)",
                    "beta": {"spec": "K(2,3)", "router": "dense"},
                }
            )
        )
        changed = registry.reload(force=True)
        assert sorted(changed) == ["alpha", "beta"]
        assert registry.get("alpha").version == 2
        assert registry.get("beta").router.kind == "dense"

        # Removal: names absent from the file are dropped.
        spec_file.write_text(json.dumps({"beta": "K(2,3)"}))
        changed = registry.reload(force=True)
        assert "alpha" in changed
        with pytest.raises(KeyError):
            registry.get("alpha")


class TestProtocolDecode:
    def test_pairs_form(self):
        q = decode_query(
            {"op": "next-hop", "topology": "t", "pairs": [[0, 1], [2, 3]]}
        )
        assert q.count == 2
        np.testing.assert_array_equal(q.sources, [0, 2])
        np.testing.assert_array_equal(q.targets, [1, 3])

    def test_sources_targets_form(self):
        q = decode_query(
            {"op": "eta", "topology": "t", "sources": [4], "targets": [5]}
        )
        assert q.count == 1 and q.op == "eta"

    @pytest.mark.parametrize(
        "bad, match",
        [
            ([], "JSON object"),
            ({"op": "teleport", "topology": "t", "pairs": []}, "unknown op"),
            ({"op": "path", "pairs": [[0, 1]]}, "topology"),
            ({"op": "path", "topology": "t"}, "pairs"),
            (
                {"op": "path", "topology": "t", "pairs": [[1, 2, 3]]},
                r"\[\[source, target\]",
            ),
            (
                {"op": "path", "topology": "t", "sources": [1], "targets": []},
                "equal length",
            ),
            (
                {"op": "path", "topology": "t", "sources": ["a"], "targets": ["b"]},
                "integer",
            ),
        ],
    )
    def test_malformed_queries_rejected(self, bad, match):
        with pytest.raises(ProtocolError, match=match):
            decode_query(bad)

    def test_max_pairs_enforced(self):
        with pytest.raises(ProtocolError, match="per-request limit"):
            decode_query(
                {"op": "path", "topology": "t", "pairs": [[0, 1]] * 5},
                max_pairs=4,
            )

    def test_out_of_range_rejected_by_answer(self):
        graph = build_graph("B(2,3)")
        router = make_router(graph)
        q = BatchQuery(
            op="next-hop",
            topology="t",
            sources=np.array([0]),
            targets=np.array([99]),
        )
        with pytest.raises(ProtocolError, match="out of range"):
            answer_query(q, router)


class TestBatchPaths:
    def test_matches_scalar_full_path(self):
        graph = build_graph("K(2,3)")
        router = make_router(graph)
        rng = np.random.default_rng(7)
        sources = rng.integers(graph.num_vertices, size=40)
        targets = rng.integers(graph.num_vertices, size=40)
        batched = batch_paths(router, sources, targets)
        for s, t, path in zip(sources, targets, batched):
            assert path == router.full_path(int(s), int(t))


class TestLatencyHistogram:
    def test_percentiles_bracket_samples(self):
        hist = LatencyHistogram()
        for value in [0.001] * 90 + [0.1] * 10:
            hist.record(value)
        p50, p99 = hist.percentile(50), hist.percentile(99)
        # Bucket upper bounds: within one log-bucket ratio of the sample.
        assert 0.001 <= p50 <= 0.002
        assert 0.1 <= p99 <= 0.2
        assert abs(hist.mean() - (90 * 0.001 + 10 * 0.1) / 100) < 1e-12

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(50) is None
        assert hist.mean() is None

    def test_overflow_bucket(self):
        hist = LatencyHistogram(max_s=1.0, buckets=4)
        hist.record(50.0)
        assert hist.percentile(99) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=1)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)


class TestServeMetrics:
    def test_record_and_snapshot(self):
        clock = iter(float(i) for i in range(100))
        metrics = ServeMetrics(window_s=10.0, clock=lambda: next(clock))
        metrics.record("next-hop", queries=100, seconds=0.01)
        metrics.record("next-hop", queries=50, seconds=0.02, error=True)
        metrics.record_batch(requests=3, pairs=150)
        snap = metrics.snapshot()
        endpoint = snap["endpoints"]["next-hop"]
        assert endpoint["requests"] == 2
        assert endpoint["queries"] == 150
        assert endpoint["errors"] == 1
        assert endpoint["latency_p50_s"] is not None
        assert snap["batching"]["batches"] == 1
        assert snap["batching"]["coalesced_requests"] == 3
        assert snap["queries_per_second"] == pytest.approx(15.0)

    def test_qps_window_expires(self):
        times = [0.0, 0.0, 100.0]
        metrics = ServeMetrics(window_s=10.0, clock=lambda: times.pop(0))
        metrics.record("op", queries=1000, seconds=0.001)
        assert metrics.queries_per_second() == 0.0


class TestEndToEndParity:
    """HTTP replies are bit-identical to direct router calls."""

    @pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
    @pytest.mark.parametrize("kind", ROUTER_KINDS)
    def test_all_ops_match_direct_router(self, parity_server, family, kind):
        graph = build_graph(FAMILY_SPECS[family])
        router = make_router(graph, kind)
        n = graph.num_vertices
        rng = np.random.default_rng(42)
        sources = rng.integers(n, size=64)
        targets = rng.integers(n, size=64)
        pairs = np.stack([sources, targets], axis=1).tolist()
        name = topology_name(family, kind)

        reply = query(
            parity_server, {"op": "next-hop", "topology": name, "pairs": pairs}
        )
        assert reply["ok"] and reply["count"] == 64
        np.testing.assert_array_equal(
            reply["hops"], router.next_hops(sources, targets)
        )

        reply = query(
            parity_server, {"op": "path", "topology": name, "pairs": pairs}
        )
        assert reply["paths"] == batch_paths(router, sources, targets)

        reply = query(
            parity_server, {"op": "eta", "topology": name, "pairs": pairs}
        )
        lengths = router.path_lengths(sources, targets)
        np.testing.assert_array_equal(reply["lengths"], lengths)
        per_hop = LinkModel().latency + LinkModel().transmission_time
        expected = np.where(lengths < 0, -1.0, lengths * per_hop)
        np.testing.assert_array_equal(reply["etas"], expected)

    def test_dense_walk_lengths_match_distance_table(self):
        # The generic walk-based path_lengths equals the BFS distance table
        # (each next hop is one BFS step closer), which justifies the O(1)
        # DenseTableRouter.path_lengths override the eta endpoint uses.
        graph = build_graph("H(4,8,2)")
        table = build_routing_table(graph)
        dense = make_router(graph, "dense")
        closed = make_router(graph, "closed-form")
        n = graph.num_vertices
        s, t = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        s, t = s.ravel(), t.ravel()
        np.testing.assert_array_equal(
            dense.path_lengths(s, t), table.distance[s, t]
        )
        np.testing.assert_array_equal(
            closed.path_lengths(s, t), table.distance[s, t]
        )


class TestServerBehaviour:
    def test_healthz_lists_topologies(self, parity_server):
        reply = http_request(
            parity_server.host, parity_server.port, "GET", "/healthz"
        )
        assert reply["ok"]
        assert topology_name("B", "dense") in reply["topologies"]

    def test_stats_schema(self, parity_server):
        query(
            parity_server,
            {
                "op": "next-hop",
                "topology": topology_name("B", "dense"),
                "pairs": [[0, 1]],
            },
        )
        stats = http_request(
            parity_server.host, parity_server.port, "GET", "/stats"
        )
        assert stats["ok"]
        assert stats["uptime_s"] > 0
        assert "next-hop" in stats["endpoints"]
        info = stats["topologies"][topology_name("B", "lru")]
        assert info["spec"] == "B(2,4)" and info["router"] == "lru"

    def test_unknown_topology_is_404(self, parity_server):
        reply = query(
            parity_server,
            {"op": "next-hop", "topology": "nowhere", "pairs": [[0, 1]]},
        )
        assert not reply["ok"]
        assert "unknown topology" in reply["error"]

    def test_bad_op_is_rejected(self, parity_server):
        reply = query(
            parity_server,
            {"op": "teleport", "topology": "b-dense", "pairs": [[0, 1]]},
        )
        assert not reply["ok"] and "unknown op" in reply["error"]

    def test_out_of_range_is_rejected(self, parity_server):
        reply = query(
            parity_server,
            {"op": "next-hop", "topology": "b-dense", "pairs": [[0, 400]]},
        )
        assert not reply["ok"] and "out of range" in reply["error"]

    def test_unknown_route_is_404(self, parity_server):
        reply = http_request(
            parity_server.host, parity_server.port, "GET", "/nope"
        )
        assert not reply["ok"]

    def test_request_id_round_trips(self, parity_server):
        reply = query(
            parity_server,
            {
                "op": "next-hop",
                "topology": "b-dense",
                "pairs": [[0, 1]],
                "id": "req-17",
            },
        )
        assert reply["ok"] and reply["id"] == "req-17"

    def test_concurrent_requests_coalesce_and_stay_correct(self):
        registry = RouterRegistry()
        registry.add("demo", "B(2,4)", "dense")
        graph = build_graph("B(2,4)")
        router = make_router(graph, "dense")
        # A wide batch window so concurrent requests land in one bucket.
        with ServerThread(
            registry, batch_window_s=0.05, batch_pairs=10_000
        ) as server:
            results = {}

            def one(index):
                s, t = index % 16, (index * 7 + 3) % 16
                results[index] = (
                    query(
                        server,
                        {
                            "op": "next-hop",
                            "topology": "demo",
                            "pairs": [[s, t]],
                        },
                    ),
                    int(router.next_hop(s, t)),
                )

            threads = [
                threading.Thread(target=one, args=(i,)) for i in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = http_request(server.host, server.port, "GET", "/stats")
        assert len(results) == 16
        for reply, expected in results.values():
            assert reply["ok"] and reply["hops"] == [expected]
        # At least one flush served several requests with one router call.
        assert stats["batching"]["coalesced_requests"] > 0
        assert stats["batching"]["batches"] < 16

    def test_hot_reload_over_http(self, tmp_path):
        spec_file = tmp_path / "topologies.json"
        spec_file.write_text(json.dumps({"live": "B(2,3)"}))
        registry = RouterRegistry()
        registry.load_spec_file(spec_file)
        # reload_interval_s=0 disables the periodic task; POST /reload only.
        with ServerThread(registry, reload_interval_s=0) as server:
            before = http_request(server.host, server.port, "GET", "/stats")
            assert before["topologies"]["live"]["nodes"] == 8
            spec_file.write_text(json.dumps({"live": "B(2,4)"}))
            reply = http_request(server.host, server.port, "POST", "/reload")
            assert reply["ok"] and reply["changed"] == ["live"]
            after = http_request(server.host, server.port, "GET", "/stats")
            assert after["topologies"]["live"]["nodes"] == 16
            assert after["topologies"]["live"]["version"] == 2


class TestRunBench:
    def test_self_hosted_bench_round_trip(self):
        registry = RouterRegistry()
        registry.add("demo", "B(2,4)", "dense")
        with ServerThread(registry) as server:
            result = run_bench(
                server.host,
                server.port,
                topology="demo",
                messages=2000,
                batch_pairs=256,
                connections=2,
            )
        assert result.queries == 2000
        assert result.requests == 8
        assert result.qps > 0
        assert result.p50_s <= result.p99_s <= result.max_s
        entry = result.to_json()
        assert entry["wall_time_s"] > 0 and entry["qps"] > 0

    def test_unknown_topology_raises(self):
        registry = RouterRegistry()
        registry.add("demo", "B(2,3)")
        with ServerThread(registry) as server:
            with pytest.raises(ValueError, match="does not serve"):
                run_bench(server.host, server.port, topology="ghost")


class TestServeCli:
    def test_parse_topology_arg(self):
        from repro.cli import _parse_topology_arg

        assert _parse_topology_arg("prod", require_spec=False) == (
            "prod",
            None,
            "auto",
        )
        assert _parse_topology_arg(
            "prod=H(16,32,2):closed-form", require_spec=True
        ) == ("prod", "H(16,32,2)", "closed-form")
        # Colons only split off a known router kind; specs keep their text.
        assert _parse_topology_arg("a=B(2,6)", require_spec=True) == (
            "a",
            "B(2,6)",
            "auto",
        )
        with pytest.raises(ValueError):
            _parse_topology_arg("prod", require_spec=True)
        with pytest.raises(ValueError):
            _parse_topology_arg("=B(2,3)", require_spec=True)

    def test_bench_self_host_exit_zero(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve",
                "bench",
                "--self-host",
                "--topology",
                "demo=B(2,4):dense",
                "--messages",
                "1000",
                "--batch",
                "256",
                "--connections",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "demo/next-hop" in out and "q/s" in out

    def test_bench_json_writes_and_gates(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        bench = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "serve",
                "bench",
                "--self-host",
                "--topology",
                "demo=B(2,4)",
                "--messages",
                "1000",
                "--batch",
                "256",
                "--json",
                str(bench),
            ]
        )
        assert code == 0
        entry = json.loads(bench.read_text())["serve_demo_next-hop_uniform"]
        assert entry["queries"] == 1000 and entry["qps"] > 0

    def test_stats_without_server_fails(self, capsys):
        from repro.cli import main

        # A port from the dynamic range nothing in the suite listens on.
        code = main(["serve", "stats", "--port", "1"])
        assert code == 1
        assert "stats failed" in capsys.readouterr().err

    def test_serve_without_mode_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["serve"]) == 2
        assert "serve needs a mode" in capsys.readouterr().err

    def test_run_without_topologies_fails(self, capsys):
        from repro.cli import main

        assert main(["serve", "run"]) == 2
        assert "at least one" in capsys.readouterr().err
