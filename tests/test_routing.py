"""Tests for shortest-path routing, broadcast and gossip schedules."""

import numpy as np
import pytest

from repro.graphs.digraph import Digraph
from repro.graphs.generators import circuit, de_bruijn, kautz, ring
from repro.graphs.properties import diameter, distance_matrix
from repro.routing.broadcast import (
    all_port_broadcast_schedule,
    breadth_first_arborescence,
    single_port_broadcast_schedule,
)
from repro.routing.gossip import all_port_gossip_schedule
from repro.routing.paths import (
    bfs_route,
    build_routing_table,
    debruijn_distance,
    debruijn_route,
    debruijn_route_words,
    kautz_route,
)
from repro.words import int_to_word, word_to_int


class TestDeBruijnRouting:
    def test_route_is_valid_path(self):
        d, D = 2, 4
        B = de_bruijn(d, D)
        for source in range(0, 16, 3):
            for target in range(0, 16, 5):
                path = debruijn_route(source, target, d, D)
                assert path[0] == source and path[-1] == target
                for u, v in zip(path, path[1:]):
                    assert B.has_arc(u, v)

    def test_route_is_shortest(self):
        d, D = 2, 4
        dist = distance_matrix(de_bruijn(d, D))
        for source in range(16):
            for target in range(16):
                path = debruijn_route(source, target, d, D)
                assert len(path) - 1 == dist[source, target]
                assert debruijn_distance(source, target, d, D) == dist[source, target]

    def test_route_ternary(self):
        d, D = 3, 3
        dist = distance_matrix(de_bruijn(d, D))
        rng = np.random.default_rng(0)
        for _ in range(40):
            s, t = rng.integers(27, size=2)
            assert debruijn_distance(int(s), int(t), d, D) == dist[s, t]

    def test_route_words_known_case(self):
        assert debruijn_route_words((1, 0, 1), (0, 1, 1), 2) == [(1, 0, 1), (0, 1, 1)]
        assert len(debruijn_route_words((0, 0, 0), (1, 1, 1), 2)) == 4

    def test_route_length_mismatch(self):
        with pytest.raises(ValueError):
            debruijn_route_words((1, 0), (1, 0, 1), 2)


class TestKautzRouting:
    def test_route_is_valid_kautz_path(self):
        d, D = 2, 3
        K = kautz(d, D)
        index = {word: i for i, word in enumerate(K.labels)}
        for source_word in K.labels[::3]:
            for target_word in K.labels[::4]:
                path = kautz_route(source_word, target_word, d)
                assert path[0] == source_word and path[-1] == target_word
                assert len(path) - 1 <= D
                for a, b in zip(path, path[1:]):
                    assert K.has_arc(index[a], index[b])

    def test_rejects_non_kautz_words(self):
        with pytest.raises(ValueError):
            kautz_route((0, 0, 1), (1, 0, 1), 2)


class TestGenericRouting:
    def test_bfs_route(self):
        B = de_bruijn(2, 3)
        path = bfs_route(B, 0, 7)
        assert path is not None and path[0] == 0 and path[-1] == 7
        assert len(path) - 1 == 3
        assert bfs_route(B, 4, 4) == [4]

    def test_bfs_route_unreachable(self):
        g = Digraph(3, arcs=[(0, 1)])
        assert bfs_route(g, 1, 0) is None

    def test_routing_table_consistency(self):
        for graph in (de_bruijn(2, 3), kautz(2, 3), circuit(6), ring(8)):
            table = build_routing_table(graph)
            assert table.is_consistent(graph)
            assert table.num_vertices == graph.num_vertices

    def test_bitset_and_python_builders_agree(self):
        # The vectorised builder must produce the same distances as the
        # per-target reverse BFS reference, and a consistent next-hop table,
        # on regular, irregular and multigraph topologies.
        from repro.otis.h_digraph import h_digraph

        graphs = [
            de_bruijn(2, 4),
            kautz(2, 3),
            ring(7),
            h_digraph(1, 4, 2),  # parallel arcs
            Digraph(5, arcs=[(0, 1), (0, 1), (1, 2), (2, 0), (3, 0)]),  # vertex 4 isolated
        ]
        for graph in graphs:
            fast = build_routing_table(graph, method="bitset")
            slow = build_routing_table(graph, method="python")
            assert np.array_equal(fast.distance, slow.distance)
            assert fast.is_consistent(graph)
            assert slow.is_consistent(graph)

    def test_routing_table_unknown_method(self):
        with pytest.raises(ValueError):
            build_routing_table(circuit(3), method="magic")

    def test_routing_table_empty_graph(self):
        table = build_routing_table(Digraph(0))
        assert table.num_vertices == 0

    def test_routing_table_distances_match_bfs(self):
        graph = de_bruijn(2, 4)
        table = build_routing_table(graph)
        assert np.array_equal(table.distance, distance_matrix(graph))

    def test_routing_table_route_reconstruction(self):
        graph = kautz(2, 3)
        table = build_routing_table(graph)
        path = table.route(0, 7)
        assert path is not None
        assert path[0] == 0 and path[-1] == 7
        for u, v in zip(path, path[1:]):
            assert graph.has_arc(u, v)

    def test_routing_table_unreachable(self):
        g = Digraph(2, arcs=[(0, 1)])
        table = build_routing_table(g)
        assert table.route(1, 0) is None
        assert table.distance[1, 0] == -1


class TestBroadcast:
    def test_arborescence(self):
        B = de_bruijn(2, 3)
        parent = breadth_first_arborescence(B, 0)
        assert parent[0] == 0
        assert np.all(parent >= 0)
        # following parents always terminates at the root
        for v in range(8):
            current, steps = v, 0
            while current != 0:
                current = int(parent[current])
                steps += 1
                assert steps <= 8

    def test_all_port_rounds_equal_eccentricity(self):
        for graph, expected in ((de_bruijn(2, 4), 4), (kautz(2, 3), 3), (circuit(5), 4)):
            schedule = all_port_broadcast_schedule(graph, 0)
            assert schedule.num_rounds == expected
            assert schedule.covers_all()
            assert schedule.is_valid(graph, single_port=False)

    def test_single_port_valid_and_complete(self):
        for graph in (de_bruijn(2, 3), de_bruijn(2, 4), kautz(2, 3), ring(9)):
            schedule = single_port_broadcast_schedule(graph, 0)
            assert schedule.covers_all()
            assert schedule.is_valid(graph, single_port=True)
            # single-port can never beat all-port
            assert schedule.num_rounds >= all_port_broadcast_schedule(graph, 0).num_rounds
            # information-theoretic lower bound: ceil(log2(n)) rounds
            n = graph.num_vertices
            assert schedule.num_rounds >= int(np.ceil(np.log2(n)))

    def test_single_port_on_circuit_is_n_minus_1(self):
        schedule = single_port_broadcast_schedule(circuit(7), 2)
        assert schedule.num_rounds == 6

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            breadth_first_arborescence(circuit(3), 5)


class TestGossip:
    def test_gossip_rounds_equal_diameter(self):
        for graph in (de_bruijn(2, 3), de_bruijn(2, 4), kautz(2, 3), circuit(6)):
            schedule = all_port_gossip_schedule(graph)
            assert schedule.completed()
            assert schedule.num_rounds == diameter(graph)
            final = schedule.knowledge_counts[-1]
            assert np.all(final == graph.num_vertices)

    def test_gossip_monotone_knowledge(self):
        schedule = all_port_gossip_schedule(de_bruijn(2, 4))
        counts = schedule.knowledge_counts
        assert np.all(np.diff(counts, axis=0) >= 0)
        assert np.all(counts[0] == 1)

    def test_gossip_incomplete_on_disconnected(self):
        g = Digraph(4, arcs=[(0, 1), (1, 0), (2, 3), (3, 2)])
        schedule = all_port_gossip_schedule(g)
        assert not schedule.completed()

    def test_gossip_traffic_positive(self):
        schedule = all_port_gossip_schedule(de_bruijn(2, 3))
        assert schedule.arc_traffic > 0

    def test_empty_graph(self):
        schedule = all_port_gossip_schedule(Digraph(0))
        assert schedule.completed()
        assert schedule.num_rounds == 0


class TestRoutingTableCache:
    """The shared table LRU: bounded, evictable, mutation-safe."""

    def setup_method(self):
        from repro.routing.paths import (
            clear_routing_table_cache,
            set_routing_table_cache_limit,
        )

        clear_routing_table_cache()
        set_routing_table_cache_limit(4)

    teardown_method = setup_method

    def test_hit_returns_same_instance(self):
        from repro.routing.paths import routing_table_cache_info, routing_table_for

        graph = de_bruijn(2, 4)
        table = routing_table_for(graph)
        assert routing_table_for(graph) is table
        info = routing_table_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_bounded_across_many_topologies(self):
        # A long multi-topology sweep must not accumulate dense tables: the
        # LRU evicts the oldest entries instead of pinning one per graph.
        from repro.routing.paths import (
            routing_table_cache_info,
            routing_table_for,
            set_routing_table_cache_limit,
        )

        set_routing_table_cache_limit(2)
        graphs = [de_bruijn(2, D) for D in range(2, 7)]
        for graph in graphs:
            routing_table_for(graph)
        assert routing_table_cache_info()["entries"] == 2

    def test_evicted_table_is_recomputed_not_stale(self):
        from repro.routing.paths import routing_table_for, set_routing_table_cache_limit

        set_routing_table_cache_limit(1)
        a, b = de_bruijn(2, 3), de_bruijn(2, 4)
        table_a = routing_table_for(a)
        routing_table_for(b)  # evicts a's table
        fresh = routing_table_for(a)
        assert fresh is not table_a
        assert np.array_equal(fresh.distance, table_a.distance)

    def test_zero_limit_disables_caching(self):
        from repro.routing.paths import routing_table_cache_info, routing_table_for, set_routing_table_cache_limit

        set_routing_table_cache_limit(0)
        graph = de_bruijn(2, 3)
        assert routing_table_for(graph) is not routing_table_for(graph)
        assert routing_table_cache_info()["entries"] == 0

    def test_python_and_bitset_methods_have_separate_slots(self):
        from repro.routing.paths import routing_table_cache_info, routing_table_for

        graph = de_bruijn(2, 3)
        bitset = routing_table_for(graph)
        python = routing_table_for(graph, method="python")
        assert bitset is not python
        assert routing_table_for(graph, method="bitset") is bitset
        assert routing_table_cache_info()["entries"] == 2

    def test_mutation_still_invalidates(self):
        from repro.routing.paths import routing_table_for

        graph = Digraph(3, arcs=[(0, 1), (1, 0), (1, 2)])
        table = routing_table_for(graph)
        graph.remove_arc(1, 2)
        graph.add_arc(0, 2)  # same (n, m), different topology
        fresh = routing_table_for(graph)
        assert fresh is not table
        assert fresh.next_hop[0, 2] == 2

    def test_cache_token_is_not_pickled(self):
        # Regression: the per-graph token shipped inside a pickled graph
        # could alias another graph's cache entry in a process whose token
        # counter restarted (sharded-simulation workers unpickle graphs).
        import pickle

        from repro.routing.paths import routing_table_for

        graph = de_bruijn(2, 4)
        routing_table_for(graph)
        assert hasattr(graph, "_routing_table_cache")
        clone = pickle.loads(pickle.dumps(graph))
        assert not hasattr(clone, "_routing_table_cache")
        # the clone still routes correctly (fresh token, fresh/cached table)
        table = routing_table_for(clone)
        assert table.num_vertices == 16
        assert table.is_consistent(clone)

    def test_token_ids_are_process_qualified(self):
        import os

        from repro.routing.paths import routing_table_for

        graph = de_bruijn(2, 3)
        routing_table_for(graph)
        signature, token_id = graph._routing_table_cache
        assert token_id.startswith(f"{os.getpid()}-")


class TestRoutingTableCacheThreadSafety:
    """Regression: the module-level table LRU is shared across simulator
    engines and serve executor threads; concurrent lookups and evictions
    must never corrupt the OrderedDict or hand back a half-registered
    entry."""

    def setup_method(self):
        from repro.routing.paths import (
            clear_routing_table_cache,
            set_routing_table_cache_limit,
        )

        clear_routing_table_cache()
        set_routing_table_cache_limit(2)  # constant eviction pressure

    teardown_method = setup_method

    def test_threaded_lookups_stay_consistent(self):
        import threading

        from repro.routing.paths import build_routing_table, routing_table_for

        graphs = [de_bruijn(2, D) for D in (3, 4, 5)] + [kautz(2, 3)]
        expected = [build_routing_table(g).next_hop for g in graphs]
        errors = []

        def worker(seed):
            order = list(range(len(graphs)))
            for step in range(25):
                index = order[(seed + step) % len(order)]
                table = routing_table_for(graphs[index])
                if not (table.next_hop == expected[index]).all():
                    errors.append(index)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_cache_stays_bounded_under_threads(self):
        import threading

        from repro.routing.paths import (
            routing_table_cache_info,
            routing_table_for,
        )

        graphs = [de_bruijn(2, D) for D in (3, 4, 5, 6)]

        def worker(seed):
            for step in range(20):
                routing_table_for(graphs[(seed + step) % len(graphs)])

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        info = routing_table_cache_info()
        assert info["entries"] <= 2
        assert info["hits"] + info["misses"] >= 120
