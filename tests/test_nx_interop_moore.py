"""Unit tests for networkx interop and the Moore bound helpers."""

import networkx as nx
import pytest

from repro.graphs.digraph import Digraph
from repro.graphs.generators import de_bruijn, kautz
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.moore import (
    de_bruijn_order,
    kautz_order,
    largest_known_otis_order,
    moore_bound,
    moore_efficiency,
)
from repro.graphs.nx_interop import from_networkx, networkx_is_isomorphic, to_networkx


class TestNetworkxInterop:
    def test_to_networkx_preserves_arcs(self):
        g = de_bruijn(2, 3)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 8
        assert nxg.number_of_edges() == 16
        assert nxg.is_directed()

    def test_roundtrip(self):
        g = Digraph(4, arcs=[(0, 1), (0, 1), (2, 2), (3, 0)])
        back = from_networkx(to_networkx(g))
        assert back.same_arcs(g)

    def test_from_networkx_rejects_undirected(self):
        with pytest.raises(ValueError):
            from_networkx(nx.path_graph(3))

    def test_from_networkx_relabels_nodes(self):
        nxg = nx.DiGraph()
        nxg.add_edge("b", "a")
        nxg.add_edge("a", "c")
        g = from_networkx(nxg)
        # sorted order: a=0, b=1, c=2
        assert g.has_arc(1, 0) and g.has_arc(0, 2)

    def test_matches_independent_networkx_construction(self):
        # Build B(2, 3) independently in networkx straight from the
        # congruence definition (Remark 2.6) and cross-check.
        ours = de_bruijn(2, 3)
        independent = nx.MultiDiGraph()
        independent.add_nodes_from(range(8))
        for u in range(8):
            for lam in range(2):
                independent.add_edge(u, (2 * u + lam) % 8)
        theirs = from_networkx(independent)
        assert ours.same_arcs(theirs)
        assert are_isomorphic(ours, theirs)

    def test_kautz_line_digraph_cross_check(self):
        # networkx's line-digraph of our K(2,2) must be isomorphic to K(2,3)
        # (classical line-digraph characterisation of Kautz digraphs).
        base = to_networkx(kautz(2, 2))
        line = nx.line_graph(nx.DiGraph(base))
        theirs = from_networkx(nx.convert_node_labels_to_integers(line))
        assert are_isomorphic(kautz(2, 3), theirs)

    def test_networkx_is_isomorphic_helper(self):
        assert networkx_is_isomorphic(de_bruijn(2, 2), de_bruijn(2, 2))
        assert not networkx_is_isomorphic(de_bruijn(2, 2), kautz(2, 2))


class TestMooreBounds:
    def test_moore_bound_values(self):
        assert moore_bound(2, 3) == 1 + 2 + 4 + 8
        assert moore_bound(3, 2) == 1 + 3 + 9
        assert moore_bound(1, 5) == 6

    def test_moore_bound_validation(self):
        with pytest.raises(ValueError):
            moore_bound(0, 3)
        with pytest.raises(ValueError):
            moore_bound(2, -1)

    def test_orders(self):
        assert de_bruijn_order(2, 8) == 256
        assert kautz_order(2, 8) == 384
        assert kautz_order(2, 9) == 768
        assert kautz_order(2, 10) == 1536

    def test_largest_known_otis_order_matches_table1_top(self):
        # Table 1's largest entries are the Kautz digraphs.
        assert largest_known_otis_order(2, 8) == 384
        assert largest_known_otis_order(2, 9) == 768
        assert largest_known_otis_order(2, 10) == 1536

    def test_moore_efficiency(self):
        # Kautz gets closer to the Moore bound than de Bruijn.
        assert moore_efficiency(kautz_order(2, 8), 2, 8) > moore_efficiency(
            de_bruijn_order(2, 8), 2, 8
        )
        assert 0 < moore_efficiency(256, 2, 8) < 1
