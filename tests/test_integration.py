"""Integration tests: end-to-end flows across subpackages.

These exercise the library the way the examples do: pick a de Bruijn network,
compute its optimal OTIS layout, check the hardware bill of materials, route
and simulate traffic on it, and confirm the figure-level facts of the paper on
the way.
"""

import numpy as np
import pytest

import repro
from repro.analysis.tables import paper_vs_measured
from repro.core import AlphabetDigraphSpec, debruijn_to_alphabet_isomorphism
from repro.core.components import decompose_non_cyclic
from repro.graphs import de_bruijn, diameter, kautz
from repro.graphs.isomorphism import are_isomorphic, is_isomorphism
from repro.otis import HardwareModel, h_digraph, optimal_debruijn_layout
from repro.otis.layout import imase_itoh_layout
from repro.permutations import Permutation, identity
from repro.routing import build_routing_table
from repro.simulation import LinkModel, NetworkSimulator, run_broadcast
from repro.simulation.workloads import permutation_pairs


class TestPublicAPI:
    def test_top_level_exports(self):
        assert repro.__version__
        layout = repro.optimal_debruijn_layout(2, 6)
        assert layout.verify()
        assert repro.is_otis_layout_of_de_bruijn(2, 3, 4)
        assert repro.diameter(repro.de_bruijn(2, 5)) == 5

    def test_docstring_example(self):
        layout = repro.optimal_debruijn_layout(2, 8)
        assert (layout.p, layout.q, layout.num_lenses) == (16, 32, 48)
        assert layout.verify()


class TestEndToEndLayoutAndSimulation:
    def test_design_lay_out_and_run_a_network(self):
        # 1. choose the topology: B(2, 6), 64 processors
        d, D = 2, 6
        network = de_bruijn(d, D)
        assert diameter(network) == D

        # 2. lay it out optically (Corollary 4.4)
        layout = optimal_debruijn_layout(d, D)
        assert layout.verify()
        assert layout.num_lenses == 3 * 2 ** (D // 2)

        # 3. hardware bill of materials
        report = HardwareModel().evaluate(layout)
        assert report.num_transmitters == 64 * 2
        baseline = HardwareModel().evaluate(imase_itoh_layout(d, 2**D))
        assert report.num_lenses < baseline.num_lenses

        # 4. run a permutation workload on the laid-out network
        simulator = NetworkSimulator(
            network, link=LinkModel(latency=1.0, transmission_time=0.1)
        )
        stats, messages = simulator.run(permutation_pairs(64, rng=0))
        assert stats.delivered == 64
        assert stats.mean_hops <= D

        # 5. broadcast completes in D all-port rounds
        result = run_broadcast(network, root=0)
        assert result["all_port_rounds"] == D

    def test_layout_node_assignment_consistency(self):
        # The physical assignment derived from the layout must reproduce the
        # logical de Bruijn adjacency through the OTIS wiring.
        from repro.otis.architecture import OTISArchitecture

        d, D = 2, 4
        layout = optimal_debruijn_layout(d, D)
        otis = OTISArchitecture(layout.p, layout.q)
        B = layout.graph
        h_of = layout.node_to_h
        h_to_node = {int(h_of[u]): u for u in range(B.num_vertices)}
        for u in range(B.num_vertices):
            assignment = layout.node_assignment(u)
            reached = set()
            for (i, j) in assignment.transmitters:
                a, b = otis.receiver_of(i, j)
                receiver_index = otis.receiver_index(a, b)
                reached.add(h_to_node[receiver_index // d])
            assert reached == set(B.out_neighbors(u))


class TestPaperFigures:
    def test_figure_1_2_3_are_the_same_digraph(self):
        B = de_bruijn(2, 3)
        RRK = repro.reddy_raghavan_kuhl(2, 8)
        II = repro.imase_itoh(2, 8)
        assert B.same_arcs(RRK)
        assert are_isomorphic(B, II)
        mapping = repro.debruijn_to_imase_itoh_isomorphism(2, 3)
        assert is_isomorphism(B, II, mapping)

    def test_figure_5_decomposition(self):
        spec = AlphabetDigraphSpec(
            d=2, D=3, f=Permutation([2, 1, 0]), sigma=identity(2), j=1
        )
        factors = decompose_non_cyclic(spec)
        sizes = sorted(f.size for f in factors)
        assert sizes == [2, 2, 4]

    def test_figures_7_8_h_4_8_2(self):
        H = h_digraph(4, 8, 2)
        B = de_bruijn(2, 4)
        assert are_isomorphic(H, B)
        # the constructive mapping via Proposition 4.1 / Corollary 4.2
        from repro.core.checks import otis_alphabet_spec

        spec = otis_alphabet_spec(2, 2, 3)
        mapping = debruijn_to_alphabet_isomorphism(spec)
        assert is_isomorphism(B, H, mapping)

    def test_paper_vs_measured_rows(self):
        # A few headline numbers recorded in EXPERIMENTS.md.
        layout = optimal_debruijn_layout(2, 8)
        rows = [
            paper_vs_measured("B(2,8) nodes", 256, layout.num_nodes),
            paper_vs_measured("B(2,8) optimal lenses", 48, layout.num_lenses),
            paper_vs_measured("B(2,8) diameter", 8, diameter(layout.graph)),
            paper_vs_measured("K(2,8) order", 384, kautz(2, 8).num_vertices),
        ]
        assert all(row["match"] for row in rows)


class TestCrossSubstrateConsistency:
    def test_routing_on_h_digraph_matches_debruijn_distances(self):
        # Routing on H(16, 32, 2) relabelled by the layout mapping gives the
        # same distance distribution as routing on B(2, 8) directly.
        d, D = 2, 6
        layout = optimal_debruijn_layout(d, D)
        B = layout.graph
        H = layout.h()
        table_B = build_routing_table(B)
        table_H = build_routing_table(H)
        mapping = layout.node_to_h
        sample = np.random.default_rng(0).integers(0, B.num_vertices, size=(30, 2))
        for s, t in sample:
            assert (
                table_B.distance[s, t]
                == table_H.distance[mapping[s], mapping[t]]
            )
