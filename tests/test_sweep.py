"""Tests for the resumable sharded sweep subsystem (repro.otis.sweep).

The fast tests cover the contracts the orchestration rests on: manifest
determinism (same parameters → same chunk ids, everywhere), atomic chunk
publication (a store never shows a half-written chunk), resume-after-kill
(relaunching reproduces byte-identical merged rows), cache hit/miss
semantics and code-version invalidation, and shard-union parity with the
in-process ``degree_diameter_search``.  The one slow end-to-end exercise
(kill/resume over a real Table 1 block) is opt-in via ``--run-sweep``.
"""

import json
import os

import pytest

from repro.otis.search import degree_diameter_search, table1_rows
from repro.otis.sweep import (
    ChunkManifest,
    ChunkStore,
    SplitVerdictCache,
    StoreIdentityError,
    code_version,
    merge_sweep,
    run_sweep,
)

D6_ARGS = dict(d=2, diameter=6, n_min=60, n_max=70)


def d6_manifest(**overrides):
    params = dict(
        d=2, diameter=6, n_values=range(60, 71), chunk_size=9, code_version="test-v1"
    )
    params.update(overrides)
    return ChunkManifest.build(
        params.pop("d"), params.pop("diameter"), params.pop("n_values"), **params
    )


class TestCodeVersion:
    def test_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 12

    def test_is_hex(self):
        int(code_version(), 16)


class TestManifestDeterminism:
    def test_same_inputs_same_chunk_ids(self):
        first = d6_manifest()
        second = d6_manifest()
        assert [c.chunk_id for c in first.chunks] == [
            c.chunk_id for c in second.chunks
        ]
        assert first == second

    def test_n_values_order_and_duplicates_are_canonicalised(self):
        shuffled = d6_manifest(n_values=[70, 60, 65, 60, 61, 62, 63, 64, 66, 67, 68, 69, 65])
        assert shuffled == d6_manifest()

    def test_code_version_changes_every_chunk_id(self):
        v1 = d6_manifest()
        v2 = d6_manifest(code_version="test-v2")
        assert {c.chunk_id for c in v1.chunks}.isdisjoint(
            c.chunk_id for c in v2.chunks
        )

    def test_parameters_change_chunk_ids(self):
        base = {c.chunk_id for c in d6_manifest().chunks}
        assert base.isdisjoint(c.chunk_id for c in d6_manifest(diameter=7).chunks)
        assert base.isdisjoint(
            c.chunk_id for c in d6_manifest(require_exact=False).chunks
        )

    def test_items_cover_all_candidate_splits_in_order(self):
        from repro.otis.search import candidate_splits

        manifest = d6_manifest()
        items = [item for chunk in manifest.chunks for item in chunk.items]
        expected = [
            (n, p, q) for n in range(60, 71) for p, q in candidate_splits(n, 2)
        ]
        assert items == expected

    def test_shards_partition_the_chunks(self):
        manifest = d6_manifest(chunk_size=3)
        for count in (1, 2, 3, 5):
            shards = [manifest.shard(i, count) for i in range(count)]
            collected = sorted(
                (chunk.index for shard in shards for chunk in shard)
            )
            assert collected == list(range(len(manifest.chunks)))

    def test_shard_validation(self):
        manifest = d6_manifest()
        with pytest.raises(ValueError):
            manifest.shard(2, 2)
        with pytest.raises(ValueError):
            manifest.shard(0, 0)

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            d6_manifest(chunk_size=0)


class TestChunkStore:
    def test_atomic_write_and_read(self, tmp_path):
        manifest = d6_manifest()
        store = ChunkStore(tmp_path)
        chunk = manifest.chunks[0]
        records = [{"n": 60, "p": 2, "q": 60, "verdict": 6}]
        store.write(chunk, records)
        assert store.is_complete(chunk)
        assert store.read(chunk) == records
        assert store.completed_ids() == {chunk.chunk_id}

    def test_no_temp_files_left_behind(self, tmp_path):
        manifest = d6_manifest()
        store = ChunkStore(tmp_path)
        store.write(manifest.chunks[0], [{"n": 60, "p": 2, "q": 60, "verdict": 6}])
        leftovers = [p.name for p in tmp_path.iterdir() if not p.name.startswith("chunk-")]
        assert leftovers == []

    def test_orphaned_temp_file_is_not_a_completed_chunk(self, tmp_path):
        # Simulate a writer killed mid-chunk: a .tmp-* file exists but was
        # never published.  The store must not count it as complete.
        manifest = d6_manifest()
        store = ChunkStore(tmp_path)
        chunk = manifest.chunks[0]
        (tmp_path / f".tmp-{chunk.chunk_id}-dead.jsonl").write_text('{"n": 60}\n')
        assert not store.is_complete(chunk)
        assert store.completed_ids() == set()

    def test_read_refuses_truncated_chunk(self, tmp_path):
        # A published file cut short (interrupted copy between hosts) has
        # lost its footer: read must raise, not fold partial data.
        manifest = d6_manifest()
        store = ChunkStore(tmp_path)
        chunk = manifest.chunks[0]
        records = [
            {"n": 60, "p": 2, "q": 60, "verdict": 6},
            {"n": 60, "p": 4, "q": 30, "verdict": -1},
        ]
        store.write(chunk, records)
        path = store.path_for(chunk)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the footer
        with pytest.raises(ValueError, match="footer"):
            store.read(chunk)

    def test_read_refuses_short_payload_under_intact_footer(self, tmp_path):
        manifest = d6_manifest()
        store = ChunkStore(tmp_path)
        chunk = manifest.chunks[0]
        store.write(chunk, [{"n": 60, "p": 2, "q": 60, "verdict": 6}] * 3)
        path = store.path_for(chunk)
        lines = path.read_text().splitlines()
        del lines[1]  # lose a record, keep the footer promising 3
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="partial chunk payload"):
            store.read(chunk)

    def test_read_refuses_foreign_chunk_file(self, tmp_path):
        # A chunk file renamed (or copied) under another chunk's name is
        # caught by the footer's chunk id.
        manifest = d6_manifest()
        store = ChunkStore(tmp_path)
        first, second = manifest.chunks[0], manifest.chunks[1]
        store.write(first, [{"n": 60, "p": 2, "q": 60, "verdict": 6}])
        os.replace(store.path_for(first), store.path_for(second))
        with pytest.raises(ValueError, match="different chunk"):
            store.read(second)

    def test_read_refuses_corrupt_json_line(self, tmp_path):
        manifest = d6_manifest()
        store = ChunkStore(tmp_path)
        chunk = manifest.chunks[0]
        store.write(chunk, [{"n": 60, "p": 2, "q": 60, "verdict": 6}])
        path = store.path_for(chunk)
        path.write_text('{"n": 60, "p": 2, "q"\n' + path.read_text())
        with pytest.raises(ValueError, match="not valid JSON"):
            store.read(chunk)


class TestSplitVerdictCache:
    def test_miss_then_hit(self, tmp_path):
        cache = SplitVerdictCache(tmp_path, 2, 6, version="test-v1")
        assert cache.get(2, 64) is None
        cache.put(2, 64, 6)
        assert cache.get(2, 64) == 6
        assert (cache.hits, cache.misses) == (1, 1)

    def test_persists_across_instances(self, tmp_path):
        SplitVerdictCache(tmp_path, 2, 6, version="test-v1").put(4, 32, 6)
        reopened = SplitVerdictCache(tmp_path, 2, 6, version="test-v1")
        assert reopened.get(4, 32) == 6
        assert len(reopened) == 1

    def test_code_version_bump_invalidates(self, tmp_path):
        old = SplitVerdictCache(tmp_path, 2, 6, version="test-v1")
        old.put(2, 64, 6)
        bumped = SplitVerdictCache(tmp_path, 2, 6, version="test-v2")
        assert bumped.get(2, 64) is None  # fresh file, cold cache
        assert old.path != bumped.path

    def test_scoped_by_degree_and_diameter(self, tmp_path):
        SplitVerdictCache(tmp_path, 2, 6, version="v").put(2, 64, 6)
        other_d = SplitVerdictCache(tmp_path, 3, 6, version="v")
        other_D = SplitVerdictCache(tmp_path, 2, 7, version="v")
        assert other_d.get(2, 64) is None
        assert other_D.get(2, 64) is None

    def test_torn_trailing_line_is_skipped_with_warning(self, tmp_path):
        cache = SplitVerdictCache(tmp_path, 2, 6, version="test-v1")
        cache.put(2, 64, 6)
        with cache.path.open("a") as handle:
            handle.write('{"p": 4, "q": 32, "verd')  # crash mid-write
        with pytest.warns(RuntimeWarning, match="dropped 1 unparseable"):
            reopened = SplitVerdictCache(tmp_path, 2, 6, version="test-v1")
        assert reopened.get(2, 64) == 6
        assert len(reopened) == 1

    def test_put_appends_via_unbuffered_o_append(self, tmp_path):
        # Each put is one whole line on disk immediately (single O_APPEND
        # os.write, no buffered handle a crash could leave half-flushed).
        cache = SplitVerdictCache(tmp_path, 2, 6, version="test-v1")
        cache.put(2, 64, 6)
        cache.put(4, 32, 6)
        lines = cache.path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"p": 2, "q": 64, "verdict": 6},
            {"p": 4, "q": 32, "verdict": 6},
        ]

    def test_duplicate_put_is_idempotent(self, tmp_path):
        cache = SplitVerdictCache(tmp_path, 2, 6, version="test-v1")
        cache.put(2, 64, 6)
        cache.put(2, 64, 6)
        assert len(cache.path.read_text().splitlines()) == 1


class TestSweepParity:
    def test_shard_union_equals_unsharded_search(self, tmp_path):
        direct = degree_diameter_search(2, 6, 60, 70)
        manifest = ChunkManifest.build(2, 6, range(60, 71), chunk_size=5)
        store = ChunkStore(tmp_path)
        for index in range(3):
            run_sweep(manifest, store, shard=(index, 3))
        merged = merge_sweep(manifest, store)
        assert merged.rows == direct.rows
        assert merged.d == direct.d and merged.diameter == direct.diameter

    def test_resume_after_kill_reproduces_identical_rows(self, tmp_path):
        direct = degree_diameter_search(2, 6, 60, 70)
        manifest = ChunkManifest.build(2, 6, range(60, 71), chunk_size=5)
        store = ChunkStore(tmp_path)
        run_sweep(manifest, store)
        # Kill simulation: delete one published chunk and plant an orphaned
        # temp file, as an interrupted writer would leave behind.
        victim = manifest.chunks[1]
        os.unlink(store.path_for(victim))
        (tmp_path / f".tmp-{victim.chunk_id}-dead.jsonl").write_text("{}\n")
        with pytest.raises(FileNotFoundError):
            merge_sweep(manifest, store)
        outcome = run_sweep(manifest, store, resume=True)
        assert outcome["ran"] == [victim.chunk_id]
        assert len(outcome["skipped"]) == len(manifest.chunks) - 1
        assert merge_sweep(manifest, store).rows == direct.rows

    def test_merge_names_missing_chunks(self, tmp_path):
        manifest = d6_manifest()
        with pytest.raises(FileNotFoundError, match="chunks incomplete"):
            merge_sweep(manifest, ChunkStore(tmp_path))

    def test_merge_fails_fast_on_identity_mismatch(self, tmp_path):
        # A completed sweep relaunched or merged under different parameters
        # (code-version bump, chunk size, range) must fail fast on the
        # persisted manifest.json — naming the differing field — instead of
        # matching zero chunks and pretending the work was never done.
        store = ChunkStore(tmp_path)
        old = d6_manifest(code_version="test-v1")
        run_sweep(old, store)
        bumped = d6_manifest(code_version="test-v2")
        with pytest.raises(StoreIdentityError, match="code_version"):
            merge_sweep(bumped, store)
        with pytest.raises(StoreIdentityError, match="code_version"):
            run_sweep(bumped, store, resume=True)

    def test_merge_flags_manifest_mismatch_over_unidentified_store(self, tmp_path):
        # Stores written before the identity file existed carry no
        # manifest.json: the merge still refuses with the orphan-chunk
        # diagnostic instead of "run the remaining shards".
        store = ChunkStore(tmp_path)
        old = d6_manifest(code_version="test-v1")
        run_sweep(old, store)
        os.unlink(tmp_path / "manifest.json")
        bumped = d6_manifest(code_version="test-v2")
        with pytest.raises(FileNotFoundError, match="different manifest"):
            merge_sweep(bumped, store)

    def test_worker_pool_sweep_matches_serial(self, tmp_path):
        manifest = ChunkManifest.build(2, 6, range(60, 67), chunk_size=4)
        serial_store = ChunkStore(tmp_path / "serial")
        pooled_store = ChunkStore(tmp_path / "pooled")
        run_sweep(manifest, serial_store)
        run_sweep(manifest, pooled_store, workers=2)
        assert (
            merge_sweep(manifest, serial_store).rows
            == merge_sweep(manifest, pooled_store).rows
        )

    def test_at_most_filter_applied_at_merge(self, tmp_path):
        manifest = ChunkManifest.build(
            2, 5, [16], require_exact=False, chunk_size=8
        )
        store = ChunkStore(tmp_path)
        run_sweep(manifest, store)
        relaxed = merge_sweep(manifest, store)
        # B(2, 4) has diameter 4 <= 5: present under the at-most filter.
        assert relaxed.splits_for(16) != []

    def test_chunk_records_hold_raw_verdicts(self, tmp_path):
        manifest = ChunkManifest.build(2, 6, [64], chunk_size=8)
        store = ChunkStore(tmp_path)
        run_sweep(manifest, store)
        records = store.read(manifest.chunks[0])
        by_split = {(r["p"], r["q"]): r["verdict"] for r in records}
        assert by_split[(2, 64)] == 6  # B(2, 6) layout, exact diameter
        assert by_split[(1, 128)] == -1  # p=1 split is never strongly connected


class TestSearchCacheIntegration:
    def test_cached_search_matches_uncached(self, tmp_path):
        uncached = degree_diameter_search(2, 6, 62, 66)
        cache = SplitVerdictCache(tmp_path, 2, 6)
        cold = degree_diameter_search(2, 6, 62, 66, cache=cache)
        assert cold.rows == uncached.rows
        assert cache.hits == 0 and cache.misses > 0
        warm_cache = SplitVerdictCache(tmp_path, 2, 6)
        warm = degree_diameter_search(2, 6, 62, 66, cache=warm_cache)
        assert warm.rows == uncached.rows
        assert warm_cache.misses == 0
        assert warm_cache.hits == cache.misses

    def test_cache_accepts_directory_path(self, tmp_path):
        first = degree_diameter_search(2, 6, 62, 66, cache=tmp_path)
        assert list(tmp_path.glob("verdicts-d2-D6-*.jsonl"))
        second = degree_diameter_search(2, 6, 62, 66, cache=str(tmp_path))
        assert first.rows == second.rows

    def test_overlapping_blocks_share_cache_entries(self, tmp_path):
        cache = SplitVerdictCache(tmp_path, 2, 6)
        degree_diameter_search(2, 6, 60, 66, cache=cache)
        follow_up = SplitVerdictCache(tmp_path, 2, 6)
        degree_diameter_search(2, 6, 62, 70, cache=follow_up)
        # n=62..66 overlap: those verdicts come from the first sweep's cache.
        assert follow_up.hits > 0

    def test_cache_file_format_is_documented_jsonl(self, tmp_path):
        cache = SplitVerdictCache(tmp_path, 2, 6, version="test-v1")
        cache.put(2, 64, 6)
        (line,) = cache.path.read_text().splitlines()
        assert json.loads(line) == {"p": 2, "q": 64, "verdict": 6}


@pytest.mark.sweep
class TestEndToEndTable1Block:
    """Slow end-to-end exercise over a real Table 1 block (opt-in)."""

    def test_sharded_resumed_cached_diameter_8_block(self, tmp_path):
        direct = table1_rows(8)
        manifest = ChunkManifest.build(
            2, 8, range(253, 385), chunk_size=64
        )
        store = ChunkStore(tmp_path / "chunks")
        cache_dir = tmp_path / "cache"
        run_sweep(manifest, store, shard=(0, 2), cache=cache_dir)
        run_sweep(manifest, store, shard=(1, 2), cache=cache_dir)
        # Interrupt and resume with a warm cache: the recomputed chunk is
        # answered from the verdict cache, not recomputed from scratch.
        victim = manifest.chunks[0]
        os.unlink(store.path_for(victim))
        cache = SplitVerdictCache(cache_dir, 2, 8)
        outcome = run_sweep(manifest, store, resume=True, cache=cache)
        assert outcome["ran"] == [victim.chunk_id]
        assert cache.misses == 0  # every verdict of the redone chunk was cached
        merged = merge_sweep(manifest, store)
        assert merged.rows == direct.rows


class TestPartialMerge:
    def test_partial_merge_covers_completed_chunks_only(self, tmp_path):
        manifest = d6_manifest(chunk_size=4)
        assert len(manifest.chunks) > 2
        store = ChunkStore(tmp_path / "chunks")
        run_sweep(manifest, store, shard=(0, 2))
        partial = merge_sweep(manifest, store, partial=True)
        with pytest.raises(FileNotFoundError):
            merge_sweep(manifest, store)  # strict mode still refuses
        # every row of the partial result is a row of the full result
        run_sweep(manifest, store, shard=(1, 2))
        full = merge_sweep(manifest, store)
        full_rows = dict(full.rows)
        for n, splits in partial.rows:
            assert set(splits) <= set(full_rows[n])
        # and the partial result genuinely misses some of the full rows
        assert partial.rows != full.rows

    def test_partial_merge_of_complete_store_equals_strict(self, tmp_path):
        manifest = d6_manifest(chunk_size=4)
        store = ChunkStore(tmp_path / "chunks")
        run_sweep(manifest, store)
        assert merge_sweep(manifest, store, partial=True) == merge_sweep(
            manifest, store
        )


class TestMakeChunks:
    def test_generic_chunking_matches_manifest_ids(self):
        # ChunkManifest.build routes through make_chunks: identical payloads
        # must yield identical ids (the cross-subsystem coordination rule).
        from repro.otis.sweep import make_chunks

        manifest = d6_manifest()
        items = [item for chunk in manifest.chunks for item in chunk.items]
        rebuilt = make_chunks(
            items,
            manifest.chunk_size,
            [manifest.d, manifest.diameter, manifest.require_exact, manifest.code_version],
        )
        assert [c.chunk_id for c in rebuilt] == [c.chunk_id for c in manifest.chunks]

    def test_identity_renames_chunks(self):
        from repro.otis.sweep import make_chunks

        items = [(1, "a"), (2, "b")]
        assert (
            make_chunks(items, 2, ["x"])[0].chunk_id
            != make_chunks(items, 2, ["y"])[0].chunk_id
        )
        with pytest.raises(ValueError):
            make_chunks(items, 0, ["x"])
