"""Unit tests for the BENCH_*.json regression-gate policy."""

import json
import subprocess

from repro.analysis.bench_check import (
    MIN_SIGNIFICANT_SECONDS,
    check_file,
    committed_bench,
    compare_bench,
    iter_wall_time_keys,
    main,
)


class TestWallTimeKeys:
    def test_finds_nested_seconds_leaves(self):
        entry = {
            "uniform": {"batched_s": 1.0, "speedup": 13.0},
            "sweep": {"wall_time_s": 2.5, "curves": [{"warm_s": 0.2}]},
        }
        keys = dict(iter_wall_time_keys(entry))
        assert keys == {
            ("uniform", "batched_s"): 1.0,
            ("sweep", "wall_time_s"): 2.5,
            ("sweep", "curves", "0", "warm_s"): 0.2,
        }

    def test_ignores_non_numeric_and_bools(self):
        assert dict(iter_wall_time_keys({"a_s": "fast", "b_s": True})) == {}


class TestCompareBench:
    def test_regression_detected(self):
        old = {"bench": {"wall_time_s": 1.0}}
        new = {"bench": {"wall_time_s": 2.5}}
        messages = compare_bench(old, new)
        assert len(messages) == 1
        assert "bench.wall_time_s" in messages[0]

    def test_within_factor_passes(self):
        old = {"bench": {"wall_time_s": 1.0}}
        new = {"bench": {"wall_time_s": 1.9}}
        assert compare_bench(old, new) == []

    def test_speedup_passes(self):
        assert compare_bench({"a_s": 1.0}, {"a_s": 0.1}) == []

    def test_new_and_removed_keys_ignored(self):
        old = {"gone": {"wall_time_s": 1.0}}
        new = {"fresh": {"wall_time_s": 99.0}}
        assert compare_bench(old, new) == []

    def test_noise_floor(self):
        # a 10x blip on a sub-threshold timing is scheduler noise, not signal
        tiny = MIN_SIGNIFICANT_SECONDS / 2
        assert compare_bench({"a_s": tiny}, {"a_s": tiny * 10}) == []

    def test_non_timing_metrics_never_fail(self):
        old = {"bench": {"speedup": 13.0, "nodes": 1024}}
        new = {"bench": {"speedup": 1.0, "nodes": 5}}
        assert compare_bench(old, new) == []

    def test_custom_factor(self):
        old = {"a_s": 1.0}
        assert compare_bench(old, {"a_s": 1.5}, factor=1.2)
        assert compare_bench(old, {"a_s": 1.5}, factor=2.0) == []


class TestGitComparison:
    def _git(self, cwd, *args):
        subprocess.run(
            ["git", *args], cwd=cwd, check=True, capture_output=True
        )

    def _repo_with_bench(self, tmp_path, entry):
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "config", "user.email", "t@t")
        self._git(tmp_path, "config", "user.name", "t")
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps(entry))
        self._git(tmp_path, "add", "BENCH_x.json")
        self._git(tmp_path, "commit", "-q", "-m", "seed bench")
        return bench

    def test_committed_version_read_back(self, tmp_path):
        bench = self._repo_with_bench(tmp_path, {"a": {"wall_time_s": 1.0}})
        assert committed_bench(bench) == {"a": {"wall_time_s": 1.0}}

    def test_check_file_flags_regression(self, tmp_path):
        bench = self._repo_with_bench(tmp_path, {"a": {"wall_time_s": 1.0}})
        bench.write_text(json.dumps({"a": {"wall_time_s": 5.0}}))
        messages = check_file(bench)
        assert len(messages) == 1 and "a.wall_time_s" in messages[0]
        assert main([str(bench)]) == 1

    def test_check_file_ok_when_unchanged(self, tmp_path):
        bench = self._repo_with_bench(tmp_path, {"a": {"wall_time_s": 1.0}})
        assert check_file(bench) == []
        assert main([str(bench)]) == 0

    def test_untracked_file_is_not_a_regression(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        bench = tmp_path / "BENCH_new.json"
        bench.write_text(json.dumps({"a": {"wall_time_s": 9.0}}))
        assert committed_bench(bench) is None
        assert check_file(bench) == []


class TestThroughputKeys:
    """``qps``/``*_qps`` leaves regress downward, unlike ``*_s`` leaves."""

    def test_finds_qps_leaves(self):
        from repro.analysis.bench_check import iter_throughput_keys

        entry = {
            "serve": {"qps": 250000.0, "peak_qps": 300000, "p50_s": 0.004},
            "other": {"count": 7},
        }
        found = dict(iter_throughput_keys(entry))
        assert found == {
            ("serve", "qps"): 250000.0,
            ("serve", "peak_qps"): 300000.0,
        }

    def test_throughput_drop_is_a_regression(self):
        committed = {"serve": {"qps": 200000.0}}
        fresh = {"serve": {"qps": 50000.0}}
        messages = compare_bench(committed, fresh)
        assert len(messages) == 1
        assert "q/s" in messages[0] and "4.00x slower" in messages[0]

    def test_throughput_within_factor_passes(self):
        committed = {"serve": {"qps": 200000.0}}
        fresh = {"serve": {"qps": 150000.0}}
        assert compare_bench(committed, fresh) == []

    def test_throughput_gain_passes(self):
        committed = {"serve": {"qps": 100000.0}}
        fresh = {"serve": {"qps": 500000.0}}
        assert compare_bench(committed, fresh) == []

    def test_qps_noise_floor(self):
        from repro.analysis.bench_check import MIN_SIGNIFICANT_QPS

        committed = {"tiny": {"qps": MIN_SIGNIFICANT_QPS / 2}}
        fresh = {"tiny": {"qps": 1.0}}
        assert compare_bench(committed, fresh) == []

    def test_zero_fresh_qps_reports_inf(self):
        committed = {"serve": {"qps": 200000.0}}
        fresh = {"serve": {"qps": 0.0}}
        messages = compare_bench(committed, fresh)
        assert len(messages) == 1 and "inf" in messages[0]

    def test_wall_time_and_qps_checked_together(self):
        committed = {"serve": {"qps": 200000.0, "wall_time_s": 1.0}}
        fresh = {"serve": {"qps": 40000.0, "wall_time_s": 5.0}}
        assert len(compare_bench(committed, fresh)) == 2
