"""Tests for the O(D) layout checks and lens minimisation (Section 4.4)."""

import pytest

from repro.core.checks import (
    balanced_split_is_layout,
    enumerate_layout_splits,
    is_otis_layout_of_de_bruijn,
    minimal_lens_split,
    otis_alphabet_spec,
    otis_split_lens_count,
    prop_4_1_index_permutation,
)
from repro.core.isomorphisms import debruijn_to_alphabet_isomorphism
from repro.graphs.generators import de_bruijn
from repro.graphs.isomorphism import are_isomorphic, is_isomorphism
from repro.otis.h_digraph import h_digraph


class TestProposition41:
    def test_permutation_formula(self):
        f = prop_4_1_index_permutation(2, 3)  # D = 4
        assert f.as_tuple() == (2, 3, 1, 0)

    def test_h_equals_alphabet_digraph(self):
        # H(d^p', d^q', d) and A(f, C, p'-1) coincide on integer labels.
        cases = [(2, 2, 3), (2, 3, 2), (2, 1, 4), (3, 2, 2), (2, 4, 5)]
        for d, p_prime, q_prime in cases:
            H = h_digraph(d**p_prime, d**q_prime, d)
            A = otis_alphabet_spec(d, p_prime, q_prime).build()
            assert H.same_arcs(A), (d, p_prime, q_prime)

    def test_validation(self):
        with pytest.raises(ValueError):
            prop_4_1_index_permutation(0, 3)


class TestCorollary42:
    def test_even_diameter_balanced_split_is_cyclic(self):
        # Corollary 4.4's split always passes the test.
        for d in (2, 3):
            for D in (2, 4, 6, 8, 10, 12):
                assert is_otis_layout_of_de_bruijn(d, D // 2, D // 2 + 1)

    def test_degenerate_split_always_works(self):
        # p' = D, q' = 1 corresponds to the Imase-Itoh layout (O(n) lenses).
        for D in range(1, 12):
            assert is_otis_layout_of_de_bruijn(2, D, 1)
            assert is_otis_layout_of_de_bruijn(2, 1, D)

    def test_paper_examples_section_4_3(self):
        # H(2,256,2), H(4,128,2), H(16,32,2) are isomorphic to B(2,8);
        # H(8, 64, 2) is not (its f is not cyclic).
        assert is_otis_layout_of_de_bruijn(2, 1, 8)
        assert is_otis_layout_of_de_bruijn(2, 2, 7)
        assert is_otis_layout_of_de_bruijn(2, 4, 5)
        assert not is_otis_layout_of_de_bruijn(2, 3, 6)

    def test_paper_examples_odd_diameter(self):
        # "H(2^5, 2^7, 2) and B(2,11) are isomorphic, while H(d^6, d^8, d)
        #  and B(d,13) are not."
        assert is_otis_layout_of_de_bruijn(2, 5, 7)
        assert not is_otis_layout_of_de_bruijn(2, 6, 8)

    def test_check_agrees_with_explicit_isomorphism_search(self):
        # For small cases, confirm the O(D) verdict with the generic tester.
        for p_prime, q_prime in [(1, 3), (2, 2), (2, 3), (3, 2), (1, 4), (3, 1)]:
            d = 2
            D = p_prime + q_prime - 1
            verdict = is_otis_layout_of_de_bruijn(d, p_prime, q_prime)
            H = h_digraph(d**p_prime, d**q_prime, d)
            assert verdict == are_isomorphic(de_bruijn(d, D), H)

    def test_constructive_layout_mapping_when_cyclic(self):
        # When the check passes, the constructive isomorphism really maps
        # B(d, D) onto H(d^p', d^q', d).
        d, p_prime, q_prime = 2, 3, 4
        D = p_prime + q_prime - 1
        spec = otis_alphabet_spec(d, p_prime, q_prime)
        assert spec.is_debruijn_isomorphic()
        mapping = debruijn_to_alphabet_isomorphism(spec)
        H = h_digraph(d**p_prime, d**q_prime, d)
        assert is_isomorphism(de_bruijn(d, D), H, mapping)


class TestProposition43:
    def test_balanced_odd_split_only_for_D_1(self):
        assert balanced_split_is_layout(2, 1)
        for D in (3, 5, 7, 9, 11):
            half = (D + 1) // 2
            assert not is_otis_layout_of_de_bruijn(2, half, half)

    def test_balanced_even_split_always(self):
        for D in (2, 4, 6, 8, 10):
            assert balanced_split_is_layout(2, D)
            assert balanced_split_is_layout(3, D)


class TestCorollary46:
    def test_lens_count_formula(self):
        assert otis_split_lens_count(2, 4, 5) == 16 + 32
        assert otis_split_lens_count(3, 2, 3) == 9 + 27
        with pytest.raises(ValueError):
            otis_split_lens_count(2, 0, 3)

    def test_enumerate_splits_covers_all(self):
        splits = enumerate_layout_splits(2, 8)
        assert len(splits) == 8
        assert {(s.p_prime, s.q_prime) for s in splits} == {
            (p, 9 - p) for p in range(1, 9)
        }
        # p/q properties
        for split in splits:
            assert split.p == 2**split.p_prime
            assert split.q == 2**split.q_prime

    def test_minimal_split_even_diameter(self):
        # Corollary 4.4: the balanced split wins for even D.
        for D in (2, 4, 6, 8, 10, 12):
            split = minimal_lens_split(2, D)
            assert (split.p_prime, split.q_prime) == (D // 2, D // 2 + 1)
            assert split.lenses == 2 ** (D // 2) + 2 ** (D // 2 + 1)

    def test_minimal_split_odd_diameter_11(self):
        # D = 11: the near-balanced (5, 7) split works.
        split = minimal_lens_split(2, 11)
        assert (split.p_prime, split.q_prime) == (5, 7)

    def test_minimal_split_odd_diameter_13(self):
        # D = 13: (6, 8) fails (paper), so a more skewed split is optimal.
        split = minimal_lens_split(2, 13)
        assert split.is_layout
        assert (split.p_prime, split.q_prime) != (6, 8)
        assert is_otis_layout_of_de_bruijn(2, split.p_prime, split.q_prime)
        # it must still beat the trivial (1, 13) split
        assert split.lenses < otis_split_lens_count(2, 1, 13)

    def test_minimal_split_is_actually_minimal(self):
        for D in (5, 7, 9, 13):
            best = minimal_lens_split(2, D)
            valid = [s for s in enumerate_layout_splits(2, D) if s.is_layout]
            assert best.lenses == min(s.lenses for s in valid)

    def test_lens_count_scales_as_sqrt_n(self):
        # For even D the optimal lens count is (1 + d) * sqrt(n).
        for D in (4, 6, 8, 10):
            split = minimal_lens_split(2, D)
            n = 2**D
            assert split.lenses == 3 * int(n**0.5)
