"""Process-sharded ``run_many``: byte-identical merge, resume, determinism.

The contract of :mod:`repro.simulation.sharding`: per-replica
:class:`~repro.simulation.network.NetworkStats` merged from the chunk store
are **byte-identical** to the in-process
:meth:`~repro.simulation.network.BatchedNetworkSimulator.run_many` pass, no
matter how the replicas were chunked, sharded, interrupted or resumed —
exactly the guarantee the degree–diameter sweep gives for Table 1 rows.
"""

import os

import numpy as np
import pytest

from repro.otis.h_digraph import h_digraph
from repro.otis.sweep import StoreIdentityError
from repro.simulation.network import BatchedNetworkSimulator, LinkModel
from repro.simulation.sharding import (
    ReplicaChunkManifest,
    merge_replica_stats,
    run_many_sharded,
    run_replica_shard,
    sim_code_version,
    stats_from_json,
    stats_to_json,
    traffic_digest,
)
from repro.simulation.workloads import make_workload

GRAPH = h_digraph(8, 16, 2)  # n = 64, parallel-arc-free but loop-carrying
LINK = LinkModel(latency=0.7, transmission_time=0.3)


def example_traffics(count=6, messages=120):
    n = GRAPH.num_vertices
    traffics = [
        make_workload("uniform", n, messages, rng=seed, rate=2.0)
        for seed in range(count - 2)
    ]
    traffics.append(make_workload("hotspot", n, messages, rng=17))
    traffics.append(make_workload("permutation", n, 0, rng=19))
    return traffics


def in_process_stats(traffics):
    simulator = BatchedNetworkSimulator(GRAPH, link=LINK)
    return [s for s, _ in simulator.run_many(traffics, return_messages=False)]


class TestStatsCodec:
    def test_round_trip_is_exact(self):
        traffics = example_traffics(3)
        for stats in in_process_stats(traffics):
            assert stats_from_json(stats_to_json(stats)) == stats

    def test_round_trip_survives_json_text(self):
        import json

        stats = in_process_stats(example_traffics(2))[0]
        text = json.dumps(stats_to_json(stats))
        assert stats_from_json(json.loads(text)) == stats


class TestManifest:
    def test_deterministic_chunk_ids(self):
        traffics = example_traffics()
        a = ReplicaChunkManifest.build(GRAPH, traffics, link=LINK, chunk_size=2)
        b = ReplicaChunkManifest.build(GRAPH, traffics, link=LINK, chunk_size=2)
        assert [c.chunk_id for c in a.chunks] == [c.chunk_id for c in b.chunks]

    def test_identity_changes_rename_chunks(self):
        traffics = example_traffics(4)
        base = ReplicaChunkManifest.build(GRAPH, traffics, link=LINK, chunk_size=2)
        variants = [
            ReplicaChunkManifest.build(
                GRAPH, traffics, link=LinkModel(1.0, 1.0), chunk_size=2
            ),
            ReplicaChunkManifest.build(
                GRAPH, traffics, link=LINK, chunk_size=2, router="lru"
            ),
            ReplicaChunkManifest.build(
                GRAPH, traffics, link=LINK, chunk_size=2, code_version="other"
            ),
            ReplicaChunkManifest.build(
                h_digraph(4, 8, 2), traffics, link=LINK, chunk_size=2
            ),
        ]
        base_ids = {c.chunk_id for c in base.chunks}
        for variant in variants:
            assert base_ids.isdisjoint({c.chunk_id for c in variant.chunks})

    def test_traffic_content_changes_chunk_id(self):
        traffics = example_traffics(2)
        base = ReplicaChunkManifest.build(GRAPH, traffics, link=LINK)
        altered = [list(traffics[0]), list(traffics[1])]
        source, dest, time = altered[1][0]
        altered[1][0] = (source, dest, time + 1.0)
        changed = ReplicaChunkManifest.build(GRAPH, altered, link=LINK)
        assert base.chunks[0].chunk_id != changed.chunks[0].chunk_id

    def test_shards_partition_the_chunks(self):
        manifest = ReplicaChunkManifest.build(
            GRAPH, example_traffics(7), link=LINK, chunk_size=1
        )
        union = [c for k in range(3) for c in manifest.shard(k, 3)]
        assert sorted(c.index for c in union) == list(range(len(manifest.chunks)))
        with pytest.raises(ValueError):
            manifest.shard(3, 3)

    def test_code_version_is_source_fingerprint(self):
        assert len(sim_code_version()) == 12
        assert sim_code_version() == sim_code_version()

    def test_traffic_digest_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            traffic_digest(np.zeros((3, 2)))


class TestShardedExecution:
    def test_merge_is_byte_identical_to_in_process(self, tmp_path):
        traffics = example_traffics()
        expected = in_process_stats(traffics)
        merged = run_many_sharded(
            GRAPH, traffics, link=LINK, store=tmp_path, chunk_size=2
        )
        assert merged == expected

    def test_shard_union_is_byte_identical(self, tmp_path):
        traffics = example_traffics()
        expected = in_process_stats(traffics)
        manifest = ReplicaChunkManifest.build(
            GRAPH, traffics, link=LINK, chunk_size=1
        )
        for index in range(3):
            run_replica_shard(
                manifest, tmp_path, GRAPH, traffics, shard=(index, 3)
            )
        assert merge_replica_stats(manifest, tmp_path) == expected

    def test_resume_after_kill_recomputes_only_missing(self, tmp_path):
        traffics = example_traffics()
        expected = in_process_stats(traffics)
        manifest = ReplicaChunkManifest.build(
            GRAPH, traffics, link=LINK, chunk_size=2
        )
        run_replica_shard(manifest, tmp_path, GRAPH, traffics)
        # simulate a kill mid-chunk: one published file disappears
        victim = manifest.chunks[1]
        os.unlink(tmp_path / f"chunk-{victim.chunk_id}.jsonl")
        outcome = run_replica_shard(
            manifest, tmp_path, GRAPH, traffics, resume=True
        )
        assert outcome["ran"] == [victim.chunk_id]
        assert len(outcome["skipped"]) == len(manifest.chunks) - 1
        assert merge_replica_stats(manifest, tmp_path) == expected

    def test_merge_refuses_incomplete_store(self, tmp_path):
        traffics = example_traffics()
        manifest = ReplicaChunkManifest.build(
            GRAPH, traffics, link=LINK, chunk_size=2
        )
        run_replica_shard(manifest, tmp_path, GRAPH, traffics, shard=(0, 2))
        with pytest.raises(FileNotFoundError, match="incomplete"):
            merge_replica_stats(manifest, tmp_path)

    def test_worker_pool_matches_serial(self, tmp_path):
        traffics = example_traffics(4, messages=60)
        expected = in_process_stats(traffics)
        merged = run_many_sharded(
            GRAPH,
            traffics,
            link=LINK,
            store=tmp_path,
            chunk_size=1,
            workers=2,
        )
        assert merged == expected

    def test_mismatched_traffic_is_rejected(self, tmp_path):
        traffics = example_traffics(3)
        manifest = ReplicaChunkManifest.build(GRAPH, traffics, link=LINK)
        tampered = list(traffics)
        tampered[0] = make_workload("uniform", GRAPH.num_vertices, 10, rng=99)
        with pytest.raises(ValueError, match="digest"):
            run_replica_shard(manifest, tmp_path, GRAPH, tampered)
        with pytest.raises(ValueError, match="replicas"):
            run_replica_shard(manifest, tmp_path, GRAPH, traffics[:2])

    def test_sharded_respects_router_kind(self, tmp_path):
        # lru routing through the sharded path stays byte-identical too
        traffics = example_traffics(3, messages=80)
        expected = in_process_stats(traffics)
        merged = run_many_sharded(
            GRAPH, traffics, link=LINK, router="lru", store=tmp_path
        )
        assert merged == expected


class TestMergeDiagnostics:
    def test_identity_mismatch_fails_fast(self, tmp_path):
        # A store filled under one chunk size, relaunched or merged under
        # another, must fail on the persisted manifest.json — naming the
        # differing field — before any simulation or merge work runs.
        traffics = example_traffics(4, messages=40)
        written = ReplicaChunkManifest.build(
            GRAPH, traffics, link=LINK, chunk_size=2
        )
        run_replica_shard(written, tmp_path, GRAPH, traffics)
        mismatched = ReplicaChunkManifest.build(
            GRAPH, traffics, link=LINK, chunk_size=3
        )
        with pytest.raises(StoreIdentityError, match="chunk_size"):
            merge_replica_stats(mismatched, tmp_path)
        with pytest.raises(StoreIdentityError, match="chunk_size"):
            run_replica_shard(mismatched, tmp_path, GRAPH, traffics, resume=True)

    def test_orphan_chunks_hint_at_parameter_mismatch(self, tmp_path):
        # Pre-identity-file stores (no manifest.json) still get the orphan
        # diagnostic instead of just "run the remaining shards".
        traffics = example_traffics(4, messages=40)
        written = ReplicaChunkManifest.build(
            GRAPH, traffics, link=LINK, chunk_size=2
        )
        run_replica_shard(written, tmp_path, GRAPH, traffics)
        os.unlink(tmp_path / "manifest.json")
        mismatched = ReplicaChunkManifest.build(
            GRAPH, traffics, link=LINK, chunk_size=3
        )
        with pytest.raises(FileNotFoundError, match="different manifest"):
            merge_replica_stats(mismatched, tmp_path)


class TestScenarioSharding:
    """Scenario digests join the chunk identity; merges stay byte-identical."""

    def scenario(self):
        from repro.simulation.network import BufferedLinkModel
        from repro.simulation.scenarios import (
            FaultPlan,
            Scenario,
            UniformArrivals,
        )

        return Scenario(
            arrivals=UniformArrivals(40, rate=1.5),
            link=BufferedLinkModel(capacity=2, on_full="retry"),
            faults=FaultPlan.random_link_failures(GRAPH, 8, at=2.0, seed=3),
            reroute="arc-disjoint",
        )

    def test_scenario_digest_renames_chunks(self):
        from repro.simulation.scenarios import Scenario, UniformArrivals

        scenario = self.scenario()
        traffics = [
            scenario.traffic(GRAPH.num_vertices, rng=seed) for seed in range(4)
        ]
        ids = lambda manifest: [chunk.chunk_id for chunk in manifest.chunks]
        with_faults = ReplicaChunkManifest.build(GRAPH, traffics, scenario=scenario)
        healthy = ReplicaChunkManifest.build(
            GRAPH,
            traffics,
            scenario=Scenario(arrivals=UniformArrivals(40, rate=1.5)),
        )
        plain = ReplicaChunkManifest.build(GRAPH, traffics)
        assert ids(with_faults) != ids(healthy)
        assert ids(healthy) != ids(plain)
        assert with_faults.identity()["scenario_digest"] == scenario.digest()
        assert "scenario_digest" not in plain.identity()

    def test_link_and_scenario_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ReplicaChunkManifest.build(
                GRAPH, [], link=LINK, scenario=self.scenario()
            )

    def test_sharded_scenario_merge_is_byte_identical(self, tmp_path):
        scenario = self.scenario()
        traffics = [
            scenario.traffic(GRAPH.num_vertices, rng=seed) for seed in range(5)
        ]
        expected = [
            s
            for s, _ in BatchedNetworkSimulator(
                GRAPH, scenario=scenario
            ).run_many(traffics, return_messages=False)
        ]
        assert any(stats.dropped_fault or stats.rerouted_hops for stats in expected)
        merged = run_many_sharded(
            GRAPH, traffics, scenario=scenario, store=tmp_path, chunk_size=2
        )
        assert merged == expected
        # The counters survive the JSON codec exactly.
        for stats in merged:
            assert stats_from_json(stats_to_json(stats)) == stats
