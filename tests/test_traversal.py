"""Unit tests for BFS, components and related traversal algorithms."""

import numpy as np
import pytest

from repro.graphs.digraph import Digraph, RegularDigraph
from repro.graphs.generators import circuit, de_bruijn
from repro.graphs.traversal import (
    bfs_distances,
    bfs_distances_regular,
    is_strongly_connected,
    is_weakly_connected,
    reachable_set,
    strongly_connected_components,
    topological_order,
    weakly_connected_components,
)


def path_digraph(n):
    g = Digraph(n)
    for i in range(n - 1):
        g.add_arc(i, i + 1)
    return g


class TestBFS:
    def test_path(self):
        g = path_digraph(5)
        dist = bfs_distances(g, 0)
        assert list(dist) == [0, 1, 2, 3, 4]
        dist_back = bfs_distances(g, 4)
        assert list(dist_back) == [-1, -1, -1, -1, 0]

    def test_source_validation(self):
        with pytest.raises(ValueError):
            bfs_distances(path_digraph(3), 5)
        with pytest.raises(ValueError):
            bfs_distances_regular(circuit(3), -1)

    def test_regular_matches_reference(self):
        for graph in (de_bruijn(2, 4), de_bruijn(3, 3), circuit(7)):
            for source in (0, 1, graph.num_vertices - 1):
                assert np.array_equal(
                    bfs_distances(graph, source),
                    bfs_distances_regular(graph, source),
                )

    def test_reachable_set(self):
        g = path_digraph(4)
        assert reachable_set(g, 1) == {1, 2, 3}
        assert reachable_set(circuit(5), 2) == set(range(5))


class TestComponents:
    def test_weak_components_of_disjoint_circuits(self):
        g = Digraph(6)
        for offset in (0, 3):
            for i in range(3):
                g.add_arc(offset + i, offset + (i + 1) % 3)
        components = weakly_connected_components(g)
        assert components == [[0, 1, 2], [3, 4, 5]]
        assert not is_weakly_connected(g)

    def test_weak_ignores_direction(self):
        g = path_digraph(4)
        assert is_weakly_connected(g)
        assert not is_strongly_connected(g)

    def test_strong_components_path(self):
        g = path_digraph(3)
        components = strongly_connected_components(g)
        assert components == [[0], [1], [2]]

    def test_strong_components_mixed(self):
        # A 3-cycle feeding a 2-cycle.
        g = Digraph(5, arcs=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)])
        components = strongly_connected_components(g)
        assert sorted(map(tuple, components)) == [(0, 1, 2), (3, 4)]

    def test_strongly_connected_debruijn(self):
        assert is_strongly_connected(de_bruijn(2, 4))
        assert is_strongly_connected(circuit(9))

    def test_single_vertex(self):
        assert is_strongly_connected(Digraph(1))
        assert is_strongly_connected(Digraph(0))

    def test_components_cover_all_vertices(self):
        graph = de_bruijn(2, 3)
        strong = strongly_connected_components(graph)
        assert sorted(v for comp in strong for v in comp) == list(range(8))
        assert len(strong) == 1


class TestTopologicalOrder:
    def test_dag(self):
        g = Digraph(4, arcs=[(0, 1), (0, 2), (1, 3), (2, 3)])
        order = topological_order(g)
        assert order is not None
        position = {v: i for i, v in enumerate(order)}
        for u, v in g.arcs():
            assert position[u] < position[v]

    def test_cycle_returns_none(self):
        assert topological_order(circuit(4)) is None
        assert topological_order(de_bruijn(2, 2)) is None

    def test_empty(self):
        assert topological_order(Digraph(0)) == []
