"""Unit tests for B_sigma(d, D) and A(f, sigma, j) (Definitions 3.1 and 3.7)."""

import numpy as np
import pytest

from repro.core.alphabet_digraph import (
    AlphabetDigraphSpec,
    alphabet_digraph,
    apply_alphabet_permutation,
    apply_position_permutation,
    b_sigma,
    debruijn_spec,
    imase_itoh_spec,
)
from repro.graphs.generators import de_bruijn, imase_itoh
from repro.graphs.traversal import is_strongly_connected, weakly_connected_components
from repro.permutations import Permutation, complement, identity, rotation
from repro.words import word_table, word_to_int


class TestSpecValidation:
    def test_valid_spec(self):
        spec = debruijn_spec(2, 4)
        assert spec.num_vertices == 16
        assert spec.is_debruijn_isomorphic()
        assert "cyclic" in spec.describe()

    def test_mismatched_f(self):
        with pytest.raises(ValueError):
            AlphabetDigraphSpec(d=2, D=4, f=rotation(3), sigma=identity(2), j=0)

    def test_mismatched_sigma(self):
        with pytest.raises(ValueError):
            AlphabetDigraphSpec(d=2, D=3, f=rotation(3), sigma=identity(3), j=0)

    def test_bad_position(self):
        with pytest.raises(ValueError):
            AlphabetDigraphSpec(d=2, D=3, f=rotation(3), sigma=identity(2), j=3)

    def test_non_cyclic_spec_reports_it(self):
        spec = AlphabetDigraphSpec(
            d=2, D=3, f=Permutation([2, 1, 0]), sigma=identity(2), j=1
        )
        assert not spec.is_debruijn_isomorphic()
        assert "non-cyclic" in spec.describe()


class TestTableActions:
    def test_apply_position_permutation_matches_scalar(self):
        f = Permutation([3, 4, 5, 2, 0, 1])  # Example 3.3.1
        table = word_table(2, 6)
        moved = apply_position_permutation(table, f)
        for u in range(0, 64, 7):
            expected = f.permute_positions(tuple(table[u]))
            assert tuple(moved[u]) == expected

    def test_apply_position_permutation_validates(self):
        with pytest.raises(ValueError):
            apply_position_permutation(word_table(2, 3), rotation(4))

    def test_apply_alphabet_permutation(self):
        table = word_table(3, 2)
        flipped = apply_alphabet_permutation(table, complement(3))
        assert np.array_equal(flipped, 2 - table)


class TestRemark38:
    def test_debruijn_is_a_rho_id_0(self):
        # Remark 3.8: B(d, D) = A(rho, Id, 0), including the slot labelling.
        for d, D in ((2, 3), (3, 2), (2, 5)):
            built = debruijn_spec(d, D).build()
            reference = de_bruijn(d, D)
            assert np.array_equal(built.successors, reference.successors)

    def test_b_sigma_identity_is_debruijn(self):
        assert b_sigma(2, 4, identity(2)).same_arcs(de_bruijn(2, 4))

    def test_b_sigma_is_a_rho_sigma_0(self):
        sigma = Permutation([1, 2, 0])
        direct = b_sigma(3, 3, sigma)
        via_spec = alphabet_digraph(3, 3, rotation(3), sigma, 0)
        assert direct.same_arcs(via_spec)


class TestDefinition31:
    def test_b_sigma_adjacency(self):
        # Gamma+(x) = sigma(x_{D-2}) ... sigma(x_0) lambda
        sigma = Permutation([1, 0])  # complement on Z_2
        graph = b_sigma(2, 3, sigma)
        x = (1, 0, 1)
        u = word_to_int(x, 2)
        expected = {
            word_to_int((sigma(0), sigma(1), lam), 2) for lam in range(2)
        }
        assert set(graph.out_neighbors(u)) == expected

    def test_imase_itoh_spec_matches_ii_digraph(self):
        # Proof of Proposition 3.3: B_C(d, D) equals II(d, d^D) on integers.
        for d, D in ((2, 3), (2, 4), (3, 3)):
            assert imase_itoh_spec(d, D).build().same_arcs(imase_itoh(d, d**D))


class TestDefinition37:
    def test_out_degree_and_size(self):
        spec = AlphabetDigraphSpec(
            d=3, D=3, f=rotation(3), sigma=complement(3), j=1
        )
        graph = spec.build()
        assert graph.num_vertices == 27
        assert graph.degree == 3

    def test_example_3_3_1_adjacency(self):
        # Gamma+_H(x5 x4 x3 x2 x1 x0) = x2 x1 x0 x5 x4 lambda?  No: the paper's
        # H has Gamma+ = x2 x1 x0 <free> x5 x4 with the free letter at
        # position 2 — check the full out-neighbour set.
        f = Permutation([3, 4, 5, 2, 0, 1])
        graph = alphabet_digraph(2, 6, f, identity(2), 2)
        x = (1, 0, 1, 1, 0, 0)  # x5..x0
        u = word_to_int(x, 2)
        # expected: x2 x1 x0 lam x5 x4  (positions 5..0)
        expected = {
            word_to_int((x[3], x[4], x[5], lam, x[0], x[1]), 2) for lam in range(2)
        }
        assert set(graph.out_neighbors(u)) == expected

    def test_example_3_3_2_adjacency_and_disconnection(self):
        # H = A(f, Id, 1) with f(i) = 2 - i; Gamma+(x2 x1 x0) = x0 lam x2.
        f = Permutation([2, 1, 0])
        graph = alphabet_digraph(2, 3, f, identity(2), 1)
        x = (1, 1, 0)
        u = word_to_int(x, 2)
        expected = {word_to_int((x[2], lam, x[0]), 2) for lam in range(2)}
        assert set(graph.out_neighbors(u)) == expected
        assert not is_strongly_connected(graph)
        # Figure 5: components of sizes 4, 2, 2 for d = 2.
        sizes = sorted(len(c) for c in weakly_connected_components(graph))
        assert sizes == [2, 2, 4]

    def test_cyclic_f_gives_connected_digraph(self):
        spec = AlphabetDigraphSpec(
            d=2, D=4, f=Permutation([2, 0, 3, 1]), sigma=identity(2), j=0
        )
        assert spec.f.is_cyclic()
        assert is_strongly_connected(spec.build())

    def test_labels_are_words(self):
        graph = debruijn_spec(2, 3).build()
        assert graph.labels[5] == (1, 0, 1)
