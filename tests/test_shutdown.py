"""Graceful-shutdown coverage: SIGTERM against real serve/fleet processes.

Two promises, one per subsystem:

* ``repro serve run`` on SIGTERM stops admitting, drains in-flight work for
  up to ``--drain-grace`` seconds, prints ``drained, stopped`` and exits 0 —
  so supervisors and rolling restarts never cut answered connections short;
* a fleet worker (``handle_sigterm=True``, what the CLI passes) converts
  SIGTERM into :class:`FleetTerminated`: the lease it holds is released
  *promptly* (unlinked, not left to TTL reclaim) and the outcome reports
  ``terminated=True`` with the store still perfectly resumable.

The subprocess tests exercise the actual signal handlers over a real
process boundary; the in-process test pins the driver-level semantics.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.fleet import SweepFleetJob, run_fleet
from repro.otis.search import degree_diameter_search
from repro.otis.sweep import ChunkManifest, ChunkStore

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGTERM") or os.name == "nt",
    reason="POSIX signal semantics required",
)


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def wait_for_line(process, needle, timeout=30):
    """Read stdout lines until one contains ``needle``; returns the line."""
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                break
            continue
        lines.append(line)
        if needle in line:
            return line
    process.kill()
    raise AssertionError(
        f"never saw {needle!r} in subprocess output:\n{''.join(lines)}"
    )


class TestServeRunSigterm:
    def test_sigterm_drains_and_exits_zero(self):
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "run",
                "--topology",
                "t=B(2,3)",
                "--port",
                "0",
                "--drain-grace",
                "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=subprocess_env(),
        )
        try:
            banner = wait_for_line(process, "serving on http://")
            port = int(banner.rsplit(":", 1)[1])
            # The server is genuinely up: answer one query, then terminate.
            from repro.serve.bench import http_request

            reply = http_request(
                "127.0.0.1",
                port,
                "POST",
                "/v1/query",
                {"op": "next-hop", "topology": "t", "pairs": [[0, 1]]},
            )
            assert reply["ok"] is True
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "draining..." in out
        assert "drained, stopped" in out


class TestFleetWorkerSigterm:
    def fleet_job(self, tmp_path):
        manifest = ChunkManifest.build(2, 6, range(60, 71), chunk_size=4)
        store = ChunkStore(tmp_path / "sweep")
        return manifest, store, SweepFleetJob(manifest, store)

    def test_inprocess_sigterm_releases_the_lease_promptly(self, tmp_path):
        manifest, store, job = self.fleet_job(tmp_path)
        original = job.run_chunk
        calls = []

        def run_then_die(chunk):
            records = original(chunk)
            calls.append(chunk.chunk_id)
            if len(calls) == 2:
                # delivered at the next interpreter checkpoint, i.e. inside
                # the driver loop while the second chunk's lease is held
                os.kill(os.getpid(), signal.SIGTERM)
            return records

        job.run_chunk = run_then_die
        outcome = run_fleet(
            job, ttl=600, heartbeat=60, handle_sigterm=True, prefetch=False
        )
        assert outcome["terminated"] is True
        assert not outcome["complete"]
        assert len(calls) == 2
        # Prompt release: with ttl=600 nothing expires for 10 minutes, so
        # the only way the lease directory is empty is an explicit unlink.
        assert list((store.directory / "leases").glob("*.lease")) == []
        # SIGTERM restored to the previous handler afterwards.
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL

    def test_terminated_store_resumes_to_the_exact_result(self, tmp_path):
        manifest, store, job = self.fleet_job(tmp_path)
        original = job.run_chunk

        def die_after_first(chunk):
            records = original(chunk)
            os.kill(os.getpid(), signal.SIGTERM)
            return records

        job.run_chunk = die_after_first
        assert run_fleet(
            job, ttl=600, heartbeat=60, handle_sigterm=True, prefetch=False
        )["terminated"]
        # A fresh worker picks up where the terminated one stopped.
        resumed = SweepFleetJob(manifest, store)
        outcome = run_fleet(resumed, ttl=600, heartbeat=60, prefetch=False)
        assert outcome["complete"]
        assert not outcome["terminated"]
        assert resumed.merge().rows == degree_diameter_search(2, 6, 60, 70).rows

    def test_subprocess_sigterm_exits_cleanly_and_releases(self, tmp_path):
        # A real worker process: SIGTERM lands mid-chunk (the chunk sleeps),
        # the worker must release its lease and exit 0 within seconds.
        script = tmp_path / "worker.py"
        script.write_text(
            """
import json, sys, time
from repro.fleet import SweepFleetJob, run_fleet
from repro.otis.sweep import ChunkManifest, ChunkStore

manifest = ChunkManifest.build(2, 6, range(60, 71), chunk_size=4)
store = ChunkStore(sys.argv[1])
job = SweepFleetJob(manifest, store)
original = job.run_chunk

def slow(chunk):
    print("chunk-started", flush=True)
    time.sleep(60)
    return original(chunk)

job.run_chunk = slow
outcome = run_fleet(
    job, ttl=600, heartbeat=1, handle_sigterm=True, prefetch=False
)
print("outcome " + json.dumps({"terminated": outcome["terminated"]}), flush=True)
"""
        )
        store_dir = tmp_path / "sweep"
        process = subprocess.Popen(
            [sys.executable, str(script), str(store_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=subprocess_env(),
        )
        try:
            wait_for_line(process, "chunk-started")
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, out
        outcome_line = [l for l in out.splitlines() if l.startswith("outcome ")]
        assert outcome_line, out
        assert json.loads(outcome_line[0][len("outcome "):])["terminated"]
        # The lease the worker held mid-chunk is gone without TTL reclaim.
        assert list((store_dir / "leases").glob("*.lease")) == []
