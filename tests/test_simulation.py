"""Tests for the discrete-event engine and the network simulator."""

import numpy as np
import pytest

from repro.graphs.generators import circuit, de_bruijn, kautz, ring
from repro.simulation.events import BatchEventQueue, EventQueue, Simulator
from repro.simulation.network import (
    SIMULATOR_ENGINES,
    BatchedNetworkSimulator,
    LinkModel,
    NetworkSimulator,
)

ENGINES = [NetworkSimulator, BatchedNetworkSimulator]
ENGINE_IDS = ["event", "batched"]
from repro.simulation.protocols import (
    run_broadcast,
    run_gossip_traffic,
    run_point_to_point,
    run_random_traffic,
)
from repro.simulation.workloads import (
    all_to_all_pairs,
    broadcast_pairs,
    hotspot_pairs,
    permutation_pairs,
    poisson_arrival_times,
    uniform_random_pairs,
)


class TestEventQueue:
    def test_ordering_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while len(queue):
            queue.pop().action()
        assert order == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        order = []
        for label in "abc":
            queue.push(1.0, lambda lab=label: order.append(lab))
        while len(queue):
            queue.pop().action()
        assert order == ["a", "b", "c"]

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)


class TestSimulator:
    def test_time_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(2.0, lambda: times.append(sim.now))
        end = sim.run()
        assert times == [2.0, 5.0]
        assert end == 5.0
        assert sim.events_processed == 2

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(3.0, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1.0, 4.0]

    def test_until_and_max_events(self):
        sim = Simulator()
        counter = []
        for t in range(10):
            sim.schedule(float(t), lambda: counter.append(1))
        sim.run(until=4.5)
        assert len(counter) == 5
        sim2 = Simulator()
        for t in range(10):
            sim2.schedule(float(t), lambda: counter.append(1))
        sim2.run(max_events=3)
        assert sim2.events_processed == 3

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)


class TestWorkloads:
    def test_uniform_random(self):
        traffic = uniform_random_pairs(16, 100, rng=0)
        assert len(traffic) == 100
        assert all(0 <= s < 16 and 0 <= t < 16 and s != t for s, t, _ in traffic)
        assert all(time == 0.0 for _, _, time in traffic)

    def test_uniform_random_with_rate(self):
        traffic = uniform_random_pairs(8, 50, rng=1, rate=2.0)
        times = [time for _, _, time in traffic]
        assert times == sorted(times)
        assert times[-1] > 0

    def test_permutation(self):
        traffic = permutation_pairs(10, rng=3)
        destinations = [t for _, t, _ in traffic]
        assert sorted(destinations) == list(range(10))
        assert all(s != t for s, t, _ in traffic)

    def test_hotspot(self):
        traffic = hotspot_pairs(16, 200, hotspot=5, hotspot_fraction=0.9, rng=2)
        to_hotspot = sum(1 for _, t, _ in traffic if t == 5)
        assert to_hotspot > 100  # overwhelming majority targets the hotspot

    def test_broadcast_and_all_to_all(self):
        assert len(broadcast_pairs(8, root=3)) == 7
        assert len(all_to_all_pairs(5)) == 20
        with pytest.raises(ValueError):
            broadcast_pairs(4, root=9)

    def test_poisson_times(self):
        times = poisson_arrival_times(100, 4.0, rng=0)
        assert len(times) == 100
        assert np.all(np.diff(times) >= 0)
        with pytest.raises(ValueError):
            poisson_arrival_times(5, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_random_pairs(1, 5)
        with pytest.raises(ValueError):
            hotspot_pairs(8, 10, hotspot_fraction=2.0)


class TestNetworkSimulator:
    def test_single_message_latency(self):
        # one hop: transmission + latency
        link = LinkModel(latency=2.0, transmission_time=1.0)
        result = run_point_to_point(de_bruijn(2, 3), 0, 1, link=link)
        assert result["delivered"] == 1.0
        assert result["hops"] == 1.0
        assert result["latency"] == pytest.approx(3.0)

    def test_multi_hop_latency_matches_distance(self):
        d, D = 2, 4
        link = LinkModel(latency=1.0, transmission_time=0.5)
        B = de_bruijn(d, D)
        from repro.routing.paths import debruijn_distance

        for target in (3, 9, 15):
            result = run_point_to_point(B, 0, target, link=link)
            hops = debruijn_distance(0, target, d, D)
            assert result["hops"] == hops
            assert result["latency"] == pytest.approx(hops * 1.5)

    def test_self_message(self):
        result = run_point_to_point(de_bruijn(2, 3), 5, 5)
        assert result["hops"] == 0.0
        assert result["latency"] == 0.0

    def test_contention_serialises_on_shared_link(self):
        # Two messages injected at the same node towards the same next hop
        # must be serialised by the transmission time.
        C = circuit(4)
        simulator = NetworkSimulator(C, link=LinkModel(latency=0.0, transmission_time=2.0))
        stats, messages = simulator.run([(0, 1, 0.0), (0, 1, 0.0)])
        assert stats.delivered == 2
        latencies = sorted(m.latency for m in messages)
        assert latencies == [2.0, 4.0]
        assert stats.max_link_queue >= 1

    @pytest.mark.parametrize("engine_cls", ENGINES, ids=ENGINE_IDS)
    def test_parallel_arcs_are_distinct_links(self, engine_cls):
        # Regression (PR 1 fix, locked for both engines): _arc_index used
        # setdefault((u, v), index), collapsing parallel arcs into one link;
        # two simultaneous messages 0 -> 1 then serialised as [1.0, 2.0] even
        # though two physical links exist.  A 2-arc (u, v) multigraph must
        # carry two simultaneous messages with no queueing delay.
        from repro.graphs.digraph import Digraph

        g = Digraph(2, arcs=[(0, 1), (0, 1), (1, 0), (1, 0)])
        simulator = engine_cls(g, link=LinkModel(latency=0.0, transmission_time=1.0))
        stats, messages = simulator.run([(0, 1, 0.0), (0, 1, 0.0)])
        assert stats.delivered == 2
        assert sorted(m.latency for m in messages) == [1.0, 1.0]
        assert stats.max_link_queue == 1  # one message per physical link

    @pytest.mark.parametrize("engine_cls", ENGINES, ids=ENGINE_IDS)
    def test_parallel_links_still_serialise_when_saturated(self, engine_cls):
        # Three messages over two parallel links: one of them must queue.
        from repro.graphs.digraph import Digraph

        g = Digraph(2, arcs=[(0, 1), (0, 1), (1, 0)])
        simulator = engine_cls(g, link=LinkModel(latency=0.0, transmission_time=1.0))
        stats, messages = simulator.run([(0, 1, 0.0)] * 3)
        assert stats.delivered == 3
        assert sorted(m.latency for m in messages) == [1.0, 1.0, 2.0]

    @pytest.mark.parametrize("engine_cls", ENGINES, ids=ENGINE_IDS)
    def test_otis_multigraph_contention_not_overestimated(self, engine_cls):
        # H(1, 4, 2) is a 2-vertex digraph whose arcs are all parallel pairs;
        # both transceivers must carry traffic simultaneously.
        from repro.otis.h_digraph import h_digraph

        H = h_digraph(1, 4, 2)
        assert max(H.arc_multiset().values()) >= 2
        simulator = engine_cls(H, link=LinkModel(latency=0.0, transmission_time=1.0))
        stats, messages = simulator.run([(0, 1, 0.0), (0, 1, 0.0)])
        assert sorted(m.latency for m in messages) == [1.0, 1.0]

    def test_all_messages_delivered_random_traffic(self):
        stats = run_random_traffic(de_bruijn(2, 4), 200, seed=7)
        assert stats.delivered == 200
        assert stats.undelivered == 0
        assert stats.mean_hops <= 4
        assert stats.throughput() > 0

    def test_undelivered_on_disconnected(self):
        from repro.graphs.digraph import Digraph

        g = Digraph(3, arcs=[(0, 1), (1, 0), (1, 2)])
        simulator = NetworkSimulator(g)
        stats, _ = simulator.run([(2, 0, 0.0)])
        assert stats.delivered == 0
        assert stats.undelivered == 1

    def test_invalid_endpoints(self):
        simulator = NetworkSimulator(circuit(3))
        with pytest.raises(ValueError):
            simulator.run([(0, 9, 0.0)])


class TestProtocols:
    def test_broadcast_comparison(self):
        result = run_broadcast(de_bruijn(2, 4), root=0)
        assert result["all_port_rounds"] == 4.0
        assert result["single_port_rounds"] >= 4.0
        assert result["covers_all"] == 1.0
        assert result["unicast_makespan"] > 0

    def test_gossip_protocol(self):
        result = run_gossip_traffic(kautz(2, 3))
        assert result["rounds"] == 3.0
        assert result["complete"] == 1.0

    def test_debruijn_beats_ring_on_latency(self):
        # The whole point of using B(d, D): logarithmic diameter.
        n = 64
        debruijn_stats = run_random_traffic(de_bruijn(2, 6), 300, seed=5)
        ring_stats = run_random_traffic(ring(n), 300, seed=5)
        assert debruijn_stats.mean_hops < ring_stats.mean_hops

    def test_protocols_accept_engine_choice(self):
        graph = de_bruijn(2, 4)
        event = run_random_traffic(graph, 100, seed=3, engine="event")
        batched = run_random_traffic(graph, 100, seed=3, engine="batched")
        assert event == batched
        point = run_point_to_point(graph, 0, 9, engine="batched")
        assert point["delivered"] == 1.0
        with pytest.raises(ValueError):
            run_random_traffic(graph, 10, engine="warp")


class TestBatchEventQueue:
    def test_pop_batch_groups_equal_times(self):
        queue = BatchEventQueue(6)
        queue.schedule(np.array([0, 1, 2, 3]), np.array([2.0, 1.0, 2.0, 1.0]))
        queue.schedule_one(4, 1.0)
        assert len(queue) == 5
        assert queue.peek_time() == 1.0
        time, slots = queue.pop_batch()
        # insertion-sequence order: slot 1 then 3 (first call), then 4
        assert (time, slots) == (1.0, [1, 3, 4])
        time, slots = queue.pop_batch()
        assert (time, slots) == (2.0, [0, 2])
        assert len(queue) == 0

    def test_pop_batch_limit_keeps_lowest_sequence(self):
        queue = BatchEventQueue(4)
        queue.schedule(np.array([3, 1, 2]), np.array([1.0, 1.0, 1.0]))
        time, slots = queue.pop_batch(limit=2)
        assert (time, slots) == (1.0, [3, 1])
        assert queue.peek_time() == 1.0
        assert queue.pop_batch() == (1.0, [2])

    def test_rejects_double_schedule_and_negative_time(self):
        queue = BatchEventQueue(3)
        queue.schedule_one(0, 1.0)
        with pytest.raises(ValueError):
            queue.schedule_one(0, 2.0)
        with pytest.raises(ValueError):
            queue.schedule(np.array([1]), np.array([-1.0]))
        with pytest.raises(ValueError):
            queue.schedule_one(2, -0.5)

    def test_rejects_duplicate_indices_in_one_call(self):
        queue = BatchEventQueue(4)
        with pytest.raises(ValueError, match="already holds"):
            queue.schedule(np.array([0, 0]), np.array([1.0, 1.0]))
        assert len(queue) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BatchEventQueue(1).pop_batch()
        assert BatchEventQueue(1).peek_time() is None

    def test_slot_reusable_after_pop(self):
        queue = BatchEventQueue(1)
        queue.schedule_one(0, 1.0)
        queue.pop_batch()
        queue.schedule_one(0, 2.0)
        assert queue.pop_batch() == (2.0, [0])


class TestLinkModelValidation:
    def test_from_hardware_rejects_zero_rate(self):
        from repro.otis.hardware import HardwareModel

        with pytest.raises(ValueError, match="rate_gbps must be positive"):
            LinkModel.from_hardware(HardwareModel(), rate_gbps=0.0)

    def test_from_hardware_rejects_negative_rate(self):
        from repro.otis.hardware import HardwareModel

        with pytest.raises(ValueError, match="rate_gbps must be positive"):
            LinkModel.from_hardware(HardwareModel(), rate_gbps=-2.5)

    def test_from_hardware_rejects_nonpositive_message_bits(self):
        from repro.otis.hardware import HardwareModel

        with pytest.raises(ValueError, match="message_bits must be positive"):
            LinkModel.from_hardware(HardwareModel(), message_bits=0.0)

    def test_from_hardware_valid(self):
        from repro.otis.hardware import HardwareModel

        link = LinkModel.from_hardware(
            HardwareModel(), message_bits=2048.0, rate_gbps=2.0
        )
        assert link.transmission_time == pytest.approx(1024.0)
        assert link.latency > 0


class TestThroughputSweepDriver:
    def test_sweep_shapes_and_curves(self):
        from repro.otis.h_digraph import h_digraph
        from repro.simulation.workloads import run_throughput_sweep

        graph = h_digraph(4, 8, 2)
        sweep = run_throughput_sweep(
            graph,
            workloads=("uniform", "permutation"),
            rates=(None, 2.0),
            seeds=range(2),
            num_messages=40,
        )
        assert len(sweep.points) == 2 * 2 * 2
        assert all(point.stats.undelivered == 0 for point in sweep.points)
        rows = sweep.curves()
        assert len(rows) == 4
        assert {row["workload"] for row in rows} == {"uniform", "permutation"}
        payload = sweep.to_json()
        assert payload["graph"] == "H(4,8,2)"
        assert payload["nodes"] == 16 and payload["links"] == 32
        assert len(payload["curves"]) == 4

    def test_sweep_engines_agree(self):
        from repro.otis.h_digraph import h_digraph
        from repro.simulation.workloads import run_throughput_sweep

        graph = h_digraph(4, 8, 2)
        kwargs = dict(
            workloads=("uniform", "hotspot"),
            rates=(None, 1.5),
            seeds=range(2),
            num_messages=30,
        )
        batched = run_throughput_sweep(graph, engine="batched", **kwargs)
        event = run_throughput_sweep(graph, engine="event", **kwargs)
        assert [point.stats for point in batched.points] == [
            point.stats for point in event.points
        ]

    def test_make_workload_validation(self):
        from repro.simulation.workloads import make_workload

        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("tsunami", 8, 10)
        traffic = make_workload("uniform", 8, 10, rng=0, rate=2.0)
        times = [time for _, _, time in traffic]
        assert times == sorted(times) and times[-1] > 0
        permutation = make_workload("permutation", 8, 999, rng=1)
        assert len(permutation) == 8  # ignores num_messages

    def test_sweep_rejects_unknown_engine(self):
        from repro.otis.h_digraph import h_digraph
        from repro.simulation.workloads import run_throughput_sweep

        with pytest.raises(ValueError, match="unknown engine"):
            run_throughput_sweep(h_digraph(4, 8, 2), engine="warp")


class TestEngineRegistry:
    def test_registry_names_and_classes(self):
        assert SIMULATOR_ENGINES["event"] is NetworkSimulator
        assert SIMULATOR_ENGINES["batched"] is BatchedNetworkSimulator

    @pytest.mark.parametrize("engine_cls", ENGINES, ids=ENGINE_IDS)
    def test_invalid_endpoints_both_engines(self, engine_cls):
        simulator = engine_cls(circuit(3))
        with pytest.raises(ValueError, match="out of range"):
            simulator.run([(0, 9, 0.0)])

    def test_batched_rejects_negative_injection_time(self):
        simulator = BatchedNetworkSimulator(circuit(3))
        with pytest.raises(ValueError, match="non-negative"):
            simulator.run([(0, 1, -1.0)])
