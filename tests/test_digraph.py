"""Unit tests for the digraph data structures (Digraph / RegularDigraph)."""

import numpy as np
import pytest

from repro.graphs.digraph import Digraph, RegularDigraph


class TestDigraph:
    def test_empty(self):
        g = Digraph(0)
        assert g.num_vertices == 0
        assert g.num_arcs == 0
        assert list(g.arcs()) == []

    def test_add_arcs_and_neighbors(self):
        g = Digraph(3)
        g.add_arc(0, 1)
        g.add_arc(0, 2)
        g.add_arc(2, 0)
        assert g.out_neighbors(0) == [1, 2]
        assert g.out_degree(0) == 2
        assert g.num_arcs == 3
        assert g.has_arc(2, 0)
        assert not g.has_arc(1, 0)

    def test_parallel_arcs_and_loops(self):
        g = Digraph(2)
        g.add_arcs([(0, 1), (0, 1), (1, 1)])
        assert g.out_neighbors(0) == [1, 1]
        assert g.num_loops() == 1
        assert g.arc_multiset()[(0, 1)] == 2

    def test_remove_arc(self):
        g = Digraph(2, arcs=[(0, 1), (0, 1)])
        g.remove_arc(0, 1)
        assert g.out_neighbors(0) == [1]
        with pytest.raises(ValueError):
            g.remove_arc(1, 0)

    def test_add_vertex(self):
        g = Digraph(2)
        new = g.add_vertex()
        assert new == 2
        assert g.num_vertices == 3
        g.add_arc(2, 0)
        assert g.has_arc(2, 0)

    def test_vertex_range_checked(self):
        g = Digraph(2)
        with pytest.raises(ValueError):
            g.add_arc(0, 2)
        with pytest.raises(ValueError):
            g.out_neighbors(5)

    def test_copy_is_independent(self):
        g = Digraph(2, arcs=[(0, 1)])
        h = g.copy()
        h.add_arc(1, 0)
        assert g.num_arcs == 1
        assert h.num_arcs == 2

    def test_degrees(self):
        g = Digraph(3, arcs=[(0, 1), (0, 2), (1, 2)])
        assert np.array_equal(g.out_degrees(), [2, 1, 0])
        assert np.array_equal(g.in_degrees(), [0, 1, 2])
        assert g.in_neighbors(2) == [0, 1]

    def test_regularity_flags(self):
        g = Digraph(2, arcs=[(0, 1), (1, 0)])
        assert g.is_out_regular()
        assert g.is_regular()
        g.add_arc(0, 0)
        assert not g.is_out_regular()

    def test_same_arcs(self):
        g = Digraph(2, arcs=[(0, 1), (1, 0)])
        h = Digraph(2, arcs=[(1, 0), (0, 1)])
        assert g.same_arcs(h)
        h.add_arc(0, 0)
        assert not g.same_arcs(h)

    def test_successor_matrix_requires_regular(self):
        g = Digraph(2, arcs=[(0, 1)])
        with pytest.raises(ValueError):
            g.successor_matrix()

    def test_adjacency_matrix(self):
        g = Digraph(3, arcs=[(0, 1), (0, 1), (2, 0)])
        mat = g.adjacency_matrix().toarray()
        assert mat[0, 1] == 2
        assert mat[2, 0] == 1
        assert mat.sum() == 3

    def test_repr_contains_counts(self):
        g = Digraph(3, arcs=[(0, 1)], name="demo")
        text = repr(g)
        assert "demo" in text and "n=3" in text and "m=1" in text


class TestRegularDigraph:
    def test_construction_and_neighbors(self):
        g = RegularDigraph([[1, 2], [2, 0], [0, 1]])
        assert g.num_vertices == 3
        assert g.degree == 2
        assert g.out_neighbors(0) == [1, 2]
        assert g.num_arcs == 6

    def test_invalid_successors(self):
        with pytest.raises(ValueError):
            RegularDigraph([[0, 3], [0, 1]])
        with pytest.raises(ValueError):
            RegularDigraph(np.zeros((2, 2, 2), dtype=int))

    def test_matrix_read_only(self):
        g = RegularDigraph([[0], [1]])
        with pytest.raises(ValueError):
            g.successors[0, 0] = 1

    def test_in_degrees_vectorised(self):
        g = RegularDigraph([[1, 1], [0, 1]])
        assert np.array_equal(g.in_degrees(), [1, 3])

    def test_labels(self):
        g = RegularDigraph([[1], [0]], labels=["a", "b"])
        assert g.label_of(0) == "a"
        assert g.label_of(1) == "b"
        unlabelled = RegularDigraph([[1], [0]])
        assert unlabelled.label_of(1) == 1
        with pytest.raises(ValueError):
            RegularDigraph([[1], [0]], labels=["only-one"])

    def test_relabel(self):
        g = RegularDigraph([[1, 2], [2, 0], [0, 1]], labels=["a", "b", "c"])
        mapping = [2, 0, 1]  # u -> mapping[u]
        h = g.relabel(mapping)
        # arc (0, 1) becomes (2, 0)
        assert sorted(h.out_neighbors(2)) == sorted([0, 1])
        assert h.label_of(2) == "a"
        with pytest.raises(ValueError):
            g.relabel([0, 0, 1])

    def test_relabel_preserves_isomorphism(self):
        from repro.graphs.isomorphism import is_isomorphism

        g = RegularDigraph([[1, 2], [2, 0], [0, 1]])
        mapping = np.array([1, 2, 0])
        h = g.relabel(mapping)
        assert is_isomorphism(g, h, mapping)

    def test_reverse(self):
        g = RegularDigraph([[1], [2], [0]])
        rev = g.reverse()
        assert rev.has_arc(1, 0) and rev.has_arc(2, 1) and rev.has_arc(0, 2)

    def test_round_trip_digraph_regular(self):
        g = RegularDigraph([[1, 1], [0, 0]], name="multi")
        mutable = g.to_digraph()
        back = mutable.to_regular()
        assert back.same_arcs(g)

    def test_adjacency_matrix_multiplicity(self):
        g = RegularDigraph([[1, 1], [0, 1]])
        mat = g.adjacency_matrix().toarray()
        assert mat[0, 1] == 2
        assert mat[1, 1] == 1
