"""Tests for the analysis/reporting helpers."""

import json

import pytest

from repro.analysis.lens_count import lens_scaling_study, lens_scaling_table
from repro.analysis.tables import format_table, paper_vs_measured


class TestLensScaling:
    def test_even_diameters_match_closed_form(self):
        rows = lens_scaling_study(2, [2, 4, 6, 8, 10])
        for row in rows:
            assert row.n == 2**row.D
            assert row.lenses_imase_itoh == 2 + row.n
            # Corollary 4.4: balanced split, (1 + d) * sqrt(n) lenses.
            assert row.lenses_optimal == 3 * 2 ** (row.D // 2)
            assert row.normalised == pytest.approx(row.theoretical_constant)
            assert (row.p_prime, row.q_prime) == (row.D // 2, row.D // 2 + 1)

    def test_ratio_grows_with_n(self):
        rows = lens_scaling_study(2, [4, 6, 8, 10, 12])
        ratios = [row.ratio for row in rows]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 10  # the saving becomes dramatic quickly

    def test_degree_three(self):
        rows = lens_scaling_study(3, [2, 4, 6])
        for row in rows:
            assert row.lenses_optimal == 4 * 3 ** (row.D // 2)

    def test_table_rendering(self):
        text = lens_scaling_table(2, [4, 8])
        assert "Corollary 4.4" in text
        assert "256" in text


class TestTables:
    def test_format_table_alignment(self):
        rows = [
            {"name": "B(2,8)", "lenses": 48, "ratio": 5.375},
            {"name": "II(2,256)", "lenses": 258, "ratio": 1.0},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "lenses" in lines[0]
        assert "5.375" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_table_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_paper_vs_measured_numeric(self):
        row = paper_vs_measured("lenses for B(2,8)", 48, 48)
        assert row["match"] is True
        assert row["relative_deviation"] == 0.0
        row2 = paper_vs_measured("nodes", 100, 110)
        assert row2["match"] is False
        assert row2["relative_deviation"] == pytest.approx(0.1)

    def test_paper_vs_measured_non_numeric(self):
        row = paper_vs_measured("splits", [(2, 256)], [(2, 256)])
        assert row["match"] is True
        assert "relative_deviation" not in row

    def test_paper_vs_measured_zero_paper_value(self):
        assert paper_vs_measured("x", 0, 0)["relative_deviation"] == 0.0
        assert paper_vs_measured("x", 0, 1)["relative_deviation"] == float("inf")


class TestMergeBenchJson:
    """The BENCH-file merge: atomic, warning on corruption, thread-safe."""

    def test_merge_preserves_existing_keys(self, tmp_path):
        from repro.analysis.tables import merge_bench_json

        path = tmp_path / "BENCH_x.json"
        merge_bench_json(path, "first", {"wall_time_s": 1.0})
        merge_bench_json(path, "second", {"wall_time_s": 2.0})
        data = json.loads(path.read_text())
        assert set(data) == {"first", "second"}

    def test_corrupt_file_warns_instead_of_silently_discarding(self, tmp_path):
        from repro.analysis.tables import merge_bench_json

        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            merge_bench_json(path, "fresh", {"wall_time_s": 1.0})
        assert json.loads(path.read_text()) == {"fresh": {"wall_time_s": 1.0}}

    def test_no_tmp_or_lock_litter_next_to_the_bench_file(self, tmp_path):
        from repro.analysis.tables import merge_bench_json

        path = tmp_path / "BENCH_x.json"
        merge_bench_json(path, "entry", {"wall_time_s": 1.0})
        leftovers = [
            p.name for p in tmp_path.iterdir() if p.name.startswith(".BENCH")
        ]
        # the sidecar lock file may persist (it is reused), tmp files not
        assert not any(".tmp." in name for name in leftovers)

    def test_threaded_merges_never_tear_or_drop_entries(self, tmp_path):
        """Regression: pre-lock, concurrent merges raced read-modify-write
        and the file ended up missing entries (or as torn JSON)."""
        import threading

        from repro.analysis.tables import merge_bench_json

        path = tmp_path / "BENCH_x.json"
        threads_n, entries_per_thread = 8, 25

        def worker(thread_index):
            for step in range(entries_per_thread):
                merge_bench_json(
                    path,
                    f"t{thread_index}_e{step}",
                    {"wall_time_s": float(step)},
                )

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        data = json.loads(path.read_text())  # valid JSON: never torn
        assert len(data) == threads_n * entries_per_thread
