"""Differential test layer: every kernel backend vs. the numpy reference.

The compiled kernels (:mod:`repro.kernels`) promise results **byte-identical**
to the vectorised numpy paths — not statistically equal, not approximately
equal.  This suite is the proof obligation:

* the apsp kernels (full / subset eccentricity sweeps, subset distance
  rows) are compared against the numpy bit-sweep on exhaustively enumerated
  tiny digraphs and on hypothesis-randomised digraphs (with parallel arcs,
  self-loops, sinks and disconnected pieces), with and without the
  ``upper_bound`` early cut;
* the simulator kernels are compared against the numpy vector path on
  randomised workloads over parallel-arc topologies, zero-``T`` /
  zero-``L`` link timings (same-instant event cascades), truncated runs
  (``until`` / ``max_events``), multi-replica ``run_many`` pools, empty
  traffics, and scenario edge cases (fault at ``t=0``, ``capacity=0``) —
  checking stats, per-message records and the flattened transmission trace;
* the kernel-side event queue is driven directly against
  :class:`repro.simulation.events.BatchEventQueue` on adversarial time
  sequences (duplicates, ``-0.0`` vs ``+0.0``, limit truncation).

Backends under test: every *compiled* backend available in this
environment (``numba`` and/or ``cnative``) plus ``pyimpl`` — the
interpreted build of the shared jittable source (``PY_KERNELS``), which
runs everywhere and keeps this suite meaningful even where no compiled
backend exists.  The numpy reference itself is cross-checked against the
scalar event-loop engine by ``tests/test_simulation_parity.py``, closing
the loop: reference engine == numpy path == every kernel backend.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.graphs.apsp import batched_eccentricities, subset_distance_rows
from repro.graphs.digraph import Digraph
from repro.kernels._pyimpl import PY_KERNELS
from repro.otis.h_digraph import h_digraph
from repro.simulation.network import (
    BatchedNetworkSimulator,
    BufferedLinkModel,
    LinkModel,
)
from repro.simulation.scenarios import FaultPlan, Scenario, UniformArrivals
from repro.simulation.workloads import uniform_random_pairs

#: Compiled backends usable here, plus the interpreted reference build.
BACKENDS = [b for b in kernels.available_backends() if b != "numpy"] + ["pyimpl"]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    """One kernel backend name, with ``"pyimpl"`` wired into the dispatch.

    ``pyimpl`` is not a registered backend (it is far too slow for
    production use); for the duration of a test we teach the dispatch layer
    to resolve it to ``PY_KERNELS`` so the exact integration paths under
    test — ``batched_eccentricities(backend=...)``,
    ``BatchedNetworkSimulator(kernels=...)`` — run it end to end.
    """
    name = request.param
    if name == "pyimpl":
        orig_resolve = kernels.resolve_backend
        orig_get = kernels.get_kernels
        monkeypatch.setattr(
            kernels,
            "resolve_backend",
            lambda r=None: "pyimpl" if r == "pyimpl" else orig_resolve(r),
        )
        monkeypatch.setattr(
            kernels,
            "get_kernels",
            lambda b=None: PY_KERNELS if b == "pyimpl" else orig_get(b),
        )
    return name


# ---------------------------------------------------------------------- apsp


def all_tiny_digraphs():
    """Every digraph on <= 3 vertices with 0/1 arcs per ordered pair."""
    graphs = []
    for n in (1, 2, 3):
        for mask in range(1 << (n * n)):
            arcs = [
                (u, v)
                for u in range(n)
                for v in range(n)
                if (mask >> (u * n + v)) & 1
            ]
            graphs.append(Digraph(n, arcs))
    return graphs


TINY_DIGRAPHS = all_tiny_digraphs()


def assert_apsp_parity(graph, back, upper_bound=None, sources=None):
    ref = batched_eccentricities(
        graph, upper_bound, sources=sources, backend="numpy"
    )
    got = batched_eccentricities(
        graph, upper_bound, sources=sources, backend=back
    )
    assert got[0].dtype == ref[0].dtype
    assert got[0].tobytes() == ref[0].tobytes()  # byte-identical, not close
    assert got[1] == ref[1]


def test_ecc_sweep_exhaustive_tiny(backend):
    # 585 digraphs: every 0/1 adjacency on 1-3 vertices, including the
    # empty digraph, all-loops, sinks, sources and disconnected pieces.
    for graph in TINY_DIGRAPHS:
        assert_apsp_parity(graph, backend)
        assert_apsp_parity(graph, backend, upper_bound=0)
        assert_apsp_parity(graph, backend, upper_bound=1)


def test_subset_sweeps_exhaustive_tiny(backend):
    for graph in TINY_DIGRAPHS:
        n = graph.num_vertices
        sources = list(range(n))
        assert_apsp_parity(graph, backend, sources=sources)
        ref = subset_distance_rows(graph, sources, backend="numpy")
        got = subset_distance_rows(graph, sources, backend=backend)
        assert got.tobytes() == ref.tobytes()


@st.composite
def digraphs(draw, max_n=40):
    """Random digraphs: parallel arcs, self-loops, sinks all possible."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    num_arcs = draw(st.integers(min_value=0, max_value=3 * n))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=num_arcs,
            max_size=num_arcs,
        )
    )
    return Digraph(n, arcs)


@settings(max_examples=30, deadline=None)
@given(graph=digraphs(), data=st.data())
def test_ecc_sweep_randomised(graph, data):
    # The hypothesis pass runs the compiled backends only (pyimpl is
    # covered exhaustively above; interpreting 40-vertex sweeps per example
    # would dominate the tier-1 budget for no extra coverage).
    n = graph.num_vertices
    ub = data.draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=n + 1))
    )
    k = data.draw(st.integers(min_value=1, max_value=n))
    sources = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    for back in BACKENDS:
        if back == "pyimpl":
            continue
        assert_apsp_parity(graph, back, upper_bound=ub)
        assert_apsp_parity(graph, back, upper_bound=ub, sources=sources)
        ref = subset_distance_rows(graph, sources, backend="numpy")
        got = subset_distance_rows(graph, sources, backend=back)
        assert got.tobytes() == ref.tobytes()


def test_h_diameter_sized_sweep(backend):
    # One realistic topology end to end (64-word boundary: n = 64 for
    # H(1,4,2)'s line digraph would be ideal; H(4,8,2) has n=32, H(2,8,4)
    # n=64 exercising an exact word boundary).
    for graph in (h_digraph(4, 8, 2), h_digraph(2, 8, 4)):
        assert_apsp_parity(graph, backend)
        assert_apsp_parity(graph, backend, upper_bound=3)


# ----------------------------------------------------------------- simulator


def simulator(graph, back, **kwargs):
    return BatchedNetworkSimulator(graph, kernels=back, **kwargs)


def assert_messages_equal(got, ref):
    assert len(got) == len(ref)
    for g, r in zip(got, ref):
        assert g.ident == r.ident
        assert g.source == r.source
        assert g.destination == r.destination
        assert g.creation_time == r.creation_time
        assert g.hops == r.hops
        assert g.drop_reason == r.drop_reason
        if math.isnan(r.arrival_time):
            assert math.isnan(g.arrival_time)
        else:
            assert g.arrival_time == r.arrival_time  # exact, not approx


def flat_trace(trace):
    """Flatten per-batch trace triples to one (link, start, mover) list."""
    return [
        (int(l), float(s), int(m))
        for links, starts, movers in trace
        for l, s, m in zip(links, starts, movers)
    ]


def assert_sim_parity(graph, traffics, back, link=None, scenario=None, **kw):
    ref_trace, got_trace = [], []
    ref = simulator(graph, "numpy", link=link, scenario=scenario).run_many(
        traffics, trace=ref_trace, **kw
    )
    got = simulator(graph, back, link=link, scenario=scenario).run_many(
        traffics, trace=got_trace, **kw
    )
    assert len(got) == len(ref)
    for (got_stats, got_msgs), (ref_stats, ref_msgs) in zip(got, ref):
        assert got_stats == ref_stats
        if ref_msgs is None:
            assert got_msgs is None
        else:
            assert_messages_equal(got_msgs, ref_msgs)
    # Batch boundaries may differ between the kernel loop (one triple per
    # round) and the vector path (per batch); the chronological flat
    # sequence of transmissions must not.
    assert flat_trace(got_trace) == flat_trace(ref_trace)
    return ref


PARITY_LINKS = [
    LinkModel(latency=1.0, transmission_time=1.0),
    LinkModel(latency=0.7, transmission_time=0.3),
    LinkModel(latency=1.0, transmission_time=0.0),
    LinkModel(latency=0.0, transmission_time=0.0),
]

# H(1,4,2) and H(2,8,4) are multigraphs (parallel optical channels), where
# the earliest-free-link greedy is subtlest.
PARITY_GRAPHS = [h_digraph(1, 4, 2), h_digraph(2, 8, 4), h_digraph(4, 8, 2)]


@pytest.mark.parametrize("link", PARITY_LINKS, ids=lambda l: f"T{l.transmission_time}_L{l.latency}")
def test_sim_parity_workloads(backend, link):
    for graph in PARITY_GRAPHS:
        n = graph.num_vertices
        traffic = uniform_random_pairs(n, 50, rng=3)
        stats = assert_sim_parity(graph, [traffic], backend, link=link)
        assert stats[0][0].delivered == 50


def test_sim_parity_multi_replica_and_empty(backend):
    graph = h_digraph(2, 8, 4)
    n = graph.num_vertices
    traffics = [
        uniform_random_pairs(n, 30, rng=0),
        [],  # empty replica pooled with busy ones
        uniform_random_pairs(n, 45, rng=1),
    ]
    assert_sim_parity(graph, traffics, backend)
    assert_sim_parity(graph, [[]], backend)  # nothing scheduled at all


def test_sim_parity_truncated_runs(backend):
    graph = h_digraph(4, 8, 2)
    n = graph.num_vertices
    traffic = uniform_random_pairs(n, 60, rng=5)
    assert_sim_parity(graph, [traffic], backend, until=3.0)
    assert_sim_parity(graph, [traffic], backend, max_events=37)
    assert_sim_parity(graph, [traffic], backend, until=2.5, max_events=111)
    assert_sim_parity(graph, [traffic], backend, max_events=0)


def test_sim_parity_unreachable_drops(backend):
    # A sink vertex: messages to it from elsewhere are dropped by the
    # router (next hop -1) — the no-route branch of the kernel.
    graph = Digraph(3, [(0, 1), (1, 0), (0, 2), (1, 2)])  # 2 has no out-arcs
    traffic = [(2, 0, 0.0), (0, 2, 0.0), (1, 2, 0.5), (0, 1, 0.5)]
    assert_sim_parity(graph, [traffic], backend)


def test_sim_parity_same_instant_cascades(backend):
    # T=0, L=0: every forward lands back in the queue at the *same*
    # timestamp — the re-push-into-the-current-bucket path of the queue,
    # plus -0.0 creation times (the float bit pattern differs from +0.0
    # but the queue must treat them as one time, like the reference dict).
    graph = h_digraph(1, 4, 2)
    n = graph.num_vertices
    link = LinkModel(latency=0.0, transmission_time=0.0)
    traffic = [(i % n, (i * 3 + 1) % n, -0.0 if i % 2 else 0.0) for i in range(20)]
    assert_sim_parity(graph, [traffic], backend, link=link)
    assert_sim_parity(graph, [traffic], backend, link=link, max_events=7)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_sim_parity_randomised(data):
    graph = data.draw(st.sampled_from(PARITY_GRAPHS))
    n = graph.num_vertices
    count = data.draw(st.integers(min_value=0, max_value=40))
    traffic = [
        (
            data.draw(st.integers(min_value=0, max_value=n - 1)),
            data.draw(st.integers(min_value=0, max_value=n - 1)),
            data.draw(
                st.floats(
                    min_value=0.0, max_value=4.0, allow_nan=False, width=32
                )
            ),
        )
        for _ in range(count)
    ]
    link = data.draw(st.sampled_from(PARITY_LINKS))
    until = data.draw(st.one_of(st.none(), st.floats(min_value=0.0, max_value=6.0)))
    for back in BACKENDS:
        if back == "pyimpl":
            continue  # exercised by the deterministic cases above
        assert_sim_parity(graph, [traffic], back, link=link, until=until)


# ------------------------------------------------------------------ scenarios


def test_scenario_fault_at_t0_runs_reference_loop(backend):
    # A degrading scenario (fault at t=0) runs the per-event scalar loop on
    # every backend: the kernel seam must step aside, report "numpy", and
    # produce identical results trivially.
    graph = h_digraph(4, 8, 2)
    scenario = Scenario(
        arrivals=UniformArrivals(30),
        faults=FaultPlan.random_link_failures(graph, 5, at=0.0, seed=2),
    )
    sim = simulator(graph, backend, scenario=scenario)
    assert sim.kernel_backend == "numpy"
    traffic = scenario.traffic(graph.num_vertices, rng=0)
    assert_sim_parity(graph, [traffic], backend, scenario=scenario)


def test_scenario_capacity_zero_runs_reference_loop(backend):
    graph = h_digraph(1, 4, 2)
    scenario = Scenario(
        arrivals=UniformArrivals(20),
        link=BufferedLinkModel(capacity=0),
    )
    sim = simulator(graph, backend, scenario=scenario)
    assert sim.kernel_backend == "numpy"
    traffic = scenario.traffic(graph.num_vertices, rng=1)
    assert_sim_parity(graph, [traffic], backend, scenario=scenario)


def test_scenario_arrival_only_uses_kernels(backend):
    # Arrival-only scenarios keep the base-model fast path — on a kernel
    # backend that IS the kernel path, and results must still match numpy.
    graph = h_digraph(2, 8, 4)
    scenario = Scenario(arrivals=UniformArrivals(40, rate=2.0))
    sim = simulator(graph, backend, scenario=scenario)
    assert sim.kernel_backend == backend
    traffic = scenario.traffic(graph.num_vertices, rng=4)
    assert_sim_parity(graph, [traffic], backend, scenario=scenario)


# ------------------------------------------------------- event queue, direct


def queue_arrays(capacity):
    """Allocate the kernel queue exactly as ``_run_rounds_kernel`` does."""
    C = max(capacity, 1)
    H = 2
    while H < 2 * C:
        H *= 2
    fbits = np.zeros(1)
    return (
        np.empty(C),
        np.empty(C, dtype=np.int64),
        np.empty(C, dtype=np.int64),
        np.empty(C, dtype=np.int64),
        np.empty(C, dtype=np.int64),
        np.arange(C, dtype=np.int64),
        np.empty(H),
        np.full(H, -1, dtype=np.int64),
        np.array([0, C, 0, 0], dtype=np.int64),
        fbits,
        fbits.view(np.uint64),
    )


def kernel_namespace(back):
    if back == "pyimpl":
        return PY_KERNELS
    return kernels.get_kernels(back)


@settings(max_examples=25, deadline=None)
@given(
    times=st.lists(
        st.sampled_from([0.0, -0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]),
        min_size=1,
        max_size=24,
    ),
    limit=st.integers(min_value=1, max_value=8),
)
def test_queue_pop_order_matches_reference(times, limit):
    """Drain the kernel queue against BatchEventQueue, batch by batch."""
    from repro.simulation.events import BatchEventQueue

    n = len(times)
    for back in BACKENDS:
        kern = kernel_namespace(back)
        queue = queue_arrays(n)
        qstate = queue[8]
        slots = np.arange(n, dtype=np.int64)
        tarr = np.asarray(times, dtype=np.float64)
        kern.queue_schedule(*queue, slots, tarr)

        ref = BatchEventQueue(n)
        ref.schedule(slots, tarr)

        # loc != dst for every slot so pop_round reports all as forwarding
        loc = np.zeros(n, dtype=np.int64)
        dst = np.ones(n, dtype=np.int64)
        slots_out = np.empty(n, dtype=np.int64)
        tails_out = np.empty(n, dtype=np.int64)
        dests_out = np.empty(n, dtype=np.int64)
        meta = np.zeros(4, dtype=np.int64)

        while len(ref):
            ref_t, ref_slots = ref.pop_batch(limit=limit)
            assert qstate[0] > 0
            got_t = float(queue[0][0])
            kern.pop_round(
                *queue, limit, loc, dst, slots_out, tails_out, dests_out, meta
            )
            count = int(meta[0])
            assert got_t == ref_t
            assert list(slots_out[:count]) == list(ref_slots)
        assert qstate[0] == 0
