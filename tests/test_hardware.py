"""Tests for the parametric OTIS hardware model (DESIGN.md substitution)."""

import pytest

from repro.otis.hardware import (
    ElectricalTechnology,
    HardwareModel,
    OpticalTechnology,
)
from repro.otis.layout import imase_itoh_layout, optimal_debruijn_layout


class TestBreakEven:
    def test_break_even_positive_and_below_board(self):
        model = HardwareModel()
        length = model.break_even_length_mm()
        assert length > 0
        # the motivation of Section 1: optics win well within a board span
        assert length < model.board_length_mm

    def test_break_even_monotone_in_vcsel_power(self):
        cheap = HardwareModel(OpticalTechnology(vcsel_power_mw=1.0))
        costly = HardwareModel(OpticalTechnology(vcsel_power_mw=10.0))
        assert cheap.break_even_length_mm() < costly.break_even_length_mm()

    def test_break_even_zero_when_optics_free(self):
        model = HardwareModel(
            OpticalTechnology(vcsel_power_mw=0.0, receiver_power_mw=0.0)
        )
        assert model.break_even_length_mm() == 0.0

    def test_electrical_energy_grows_with_length(self):
        model = HardwareModel()
        assert model.electrical_link_energy_pj(100) > model.electrical_link_energy_pj(1)
        with pytest.raises(ValueError):
            model.electrical_link_energy_pj(-1)

    def test_latencies(self):
        model = HardwareModel(board_length_mm=100.0)
        assert model.optical_latency_ns() > 0
        # electrical signal travels slower than light in free space
        assert model.electrical_latency_ns() > model.optical_latency_ns() - \
            model.optical.transceiver_latency_ns

    def test_board_length_validation(self):
        with pytest.raises(ValueError):
            HardwareModel(board_length_mm=0)


class TestEvaluate:
    def test_report_counts_match_layout(self):
        layout = optimal_debruijn_layout(2, 8)
        report = HardwareModel().evaluate(layout)
        assert report.nodes == 256
        assert report.num_lenses == 48
        assert report.num_transmitters == 512
        assert report.num_receivers == 512
        assert report.lens_count_per_node() == pytest.approx(48 / 256)

    def test_optimal_layout_uses_fewer_lenses_but_same_transceivers(self):
        model = HardwareModel()
        optimal = model.evaluate(optimal_debruijn_layout(2, 8))
        baseline = model.evaluate(imase_itoh_layout(2, 256))
        assert optimal.num_lenses < baseline.num_lenses
        assert optimal.num_transmitters == baseline.num_transmitters
        # lens apertures: the baseline's single huge group needs a much
        # larger transmitter-side lens field
        assert optimal.transmitter_lens_aperture_mm < baseline.transmitter_lens_aperture_mm

    def test_power_scales_with_transceivers(self):
        model = HardwareModel()
        small = model.evaluate(optimal_debruijn_layout(2, 4))
        large = model.evaluate(optimal_debruijn_layout(2, 8))
        assert large.optical_power_w > small.optical_power_w
        assert large.optical_power_w == pytest.approx(
            small.optical_power_w * (256 * 2) / (16 * 2)
        )

    def test_custom_technologies(self):
        optical = OpticalTechnology(lens_unit_cost=2.5)
        electrical = ElectricalTechnology(fixed_energy_pj_per_bit=1.0)
        model = HardwareModel(optical=optical, electrical=electrical)
        report = model.evaluate(optimal_debruijn_layout(2, 4))
        assert report.total_lens_cost == pytest.approx(2.5 * report.num_lenses)
