"""Property-based tests for the routing / collective / simulation substrates.

Invariants checked on randomly generated strongly connected regular digraphs
(built by relabelling de Bruijn and Kautz digraphs, plus random circulants):

* broadcast schedules are valid under their port model and inform everyone,
* single-port broadcast is never faster than all-port,
* all-port gossip finishes in exactly the diameter,
* the network simulator delivers every message of a random workload, each
  over at least the shortest-path number of hops,
* simulated hop counts equal routing-table distances when there is no
  contention (one message at a time).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import RegularDigraph
from repro.graphs.generators import de_bruijn, kautz
from repro.graphs.properties import diameter
from repro.graphs.traversal import is_strongly_connected
from repro.routing.broadcast import (
    all_port_broadcast_schedule,
    single_port_broadcast_schedule,
)
from repro.routing.gossip import all_port_gossip_schedule
from repro.routing.paths import build_routing_table
from repro.simulation.network import LinkModel, NetworkSimulator
from repro.simulation.workloads import uniform_random_pairs


@st.composite
def connected_regular_digraph(draw):
    """A small strongly connected regular digraph with a scrambled labelling."""
    family = draw(st.sampled_from(["debruijn", "kautz", "circulant"]))
    if family == "debruijn":
        d = draw(st.integers(2, 3))
        D = draw(st.integers(2, 3))
        graph = de_bruijn(d, D)
    elif family == "kautz":
        d = draw(st.integers(2, 3))
        D = draw(st.integers(2, 3))
        graph = kautz(d, D)
    else:
        n = draw(st.integers(4, 20))
        offsets = draw(
            st.lists(st.integers(1, n - 1), min_size=1, max_size=3, unique=True)
        )
        successors = [[(u + off) % n for off in offsets] for u in range(n)]
        graph = RegularDigraph(successors)
        if not is_strongly_connected(graph):
            # offset 1 always yields a connected circulant; force it in.
            successors = [[(u + 1) % n] + row[:-1] for u, row in enumerate(successors)]
            graph = RegularDigraph(successors)
    seed = draw(st.integers(0, 2**16))
    mapping = np.random.default_rng(seed).permutation(graph.num_vertices)
    return graph.relabel(mapping)


@given(graph=connected_regular_digraph(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_broadcast_schedules_valid_and_complete(graph, data):
    root = data.draw(st.integers(0, graph.num_vertices - 1))
    all_port = all_port_broadcast_schedule(graph, root)
    single_port = single_port_broadcast_schedule(graph, root)
    assert all_port.covers_all() and single_port.covers_all()
    assert all_port.is_valid(graph, single_port=False)
    assert single_port.is_valid(graph, single_port=True)
    assert single_port.num_rounds >= all_port.num_rounds
    # all-port broadcast time equals the root's eccentricity
    assert all_port.num_rounds <= diameter(graph)


@given(graph=connected_regular_digraph())
@settings(max_examples=20, deadline=None)
def test_gossip_completes_in_diameter_rounds(graph):
    schedule = all_port_gossip_schedule(graph)
    assert schedule.completed()
    assert schedule.num_rounds == diameter(graph)
    assert bool(np.all(schedule.knowledge_counts[-1] == graph.num_vertices))


@given(graph=connected_regular_digraph(), data=st.data())
@settings(max_examples=15, deadline=None)
def test_simulator_delivers_everything(graph, data):
    seed = data.draw(st.integers(0, 1000))
    traffic = uniform_random_pairs(graph.num_vertices, 30, rng=seed)
    simulator = NetworkSimulator(graph, link=LinkModel(latency=1.0, transmission_time=0.2))
    stats, messages = simulator.run(traffic)
    assert stats.delivered == 30
    table = build_routing_table(graph)
    for message in messages:
        shortest = table.distance[message.source, message.destination]
        assert message.hops >= shortest
        assert message.latency >= 0


@given(graph=connected_regular_digraph(), data=st.data())
@settings(max_examples=15, deadline=None)
def test_uncontended_message_follows_shortest_path(graph, data):
    source = data.draw(st.integers(0, graph.num_vertices - 1))
    target = data.draw(st.integers(0, graph.num_vertices - 1))
    simulator = NetworkSimulator(graph)
    stats, messages = simulator.run([(source, target, 0.0)])
    table = build_routing_table(graph)
    assert messages[0].hops == table.distance[source, target]
