"""Tests for the Table 1 degree-diameter search (Section 4.3)."""

import pytest

from repro.graphs.generators import de_bruijn, kautz
from repro.graphs.properties import diameter
from repro.otis.h_digraph import h_digraph
from repro.otis.search import (
    PAPER_TABLE1,
    DegreeDiameterResult,
    candidate_splits,
    compare_with_paper,
    degree_diameter_search,
    h_diameter,
    table1_rows,
)


class TestCandidateSplits:
    def test_splits(self):
        assert candidate_splits(8, 2) == [(1, 16), (2, 8), (4, 4)]
        assert candidate_splits(6, 2) == [(1, 12), (2, 6), (3, 4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            candidate_splits(0, 2)


class TestHDiameter:
    def test_matches_generic_diameter(self):
        for p, q, d in [(4, 8, 2), (2, 12, 2), (2, 16, 2), (3, 9, 3)]:
            H = h_digraph(p, q, d)
            assert h_diameter(H) == diameter(H)

    def test_disconnected_returns_minus_one(self):
        # H(8, 64, 2) is disconnected (non-cyclic f, Section 4.3).
        assert h_diameter(h_digraph(8, 64, 2)) == -1

    def test_upper_bound_early_exit(self):
        H = h_digraph(2, 64, 2)  # B(2, 6)-like, diameter 6
        assert h_diameter(H, upper_bound=3) == 4  # sentinel "too large"
        assert h_diameter(H, upper_bound=10) == 6

    def test_trivial_graph(self):
        assert h_diameter(h_digraph(1, 2, 2)) == 0


class TestSmallSearches:
    def test_debruijn_2_4_found_at_diameter_4(self):
        result = degree_diameter_search(2, 4, 14, 17)
        assert result.splits_for(16) == [(2, 16), (4, 8)]
        assert result.largest_n >= 16

    def test_kautz_2_4_found_at_diameter_4(self):
        # K(2, 4) has 24 nodes and an OTIS(2, 24) layout of diameter 4.
        result = degree_diameter_search(2, 4, 16, 30)
        assert (2, 24) in result.splits_for(24)
        assert result.largest_n >= 24

    def test_require_exact_vs_at_most(self):
        exact = degree_diameter_search(2, 5, 16, 16)
        relaxed = degree_diameter_search(2, 5, 16, 16, require_exact=False)
        # B(2, 4) has diameter 4 < 5: excluded when exact, included otherwise.
        assert exact.splits_for(16) == []
        assert relaxed.splits_for(16) != []

    def test_result_table_rendering(self):
        result = degree_diameter_search(2, 4, 16, 24)
        text = result.as_table()
        assert "B(2,4)" in text
        assert "K(2,4)" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            degree_diameter_search(2, 4, 10, 5)
        with pytest.raises(ValueError):
            degree_diameter_search(2, 4, 5, 10, workers=2, chunk_size=0)

    def test_worker_pool_matches_serial(self):
        # Deterministic chunking: the parallel sweep must reproduce the
        # serial result exactly, regardless of worker scheduling.
        serial = degree_diameter_search(2, 4, 14, 26)
        parallel = degree_diameter_search(2, 4, 14, 26, workers=2, chunk_size=3)
        assert parallel == serial
        uneven = degree_diameter_search(2, 4, 14, 26, workers=3, chunk_size=5)
        assert uneven == serial

    def test_no_distance_matrix_on_search_path(self, monkeypatch):
        # The acceptance criterion of the batched engine: h_diameter must
        # never materialise an (n, n) int64 distance matrix.
        import numpy as np

        import repro.graphs.properties as properties
        import repro.otis.search as search_module

        def forbidden(*args, **kwargs):
            raise AssertionError("distance_matrix called on the search path")

        monkeypatch.setattr(properties, "distance_matrix", forbidden)
        # Shadow the name inside the search module too, so a regression that
        # reinstates `from repro.graphs.properties import distance_matrix`
        # (a module-level binding the patch above cannot reach) is caught.
        monkeypatch.setattr(search_module, "distance_matrix", forbidden, raising=False)

        # Belt and braces: trap square numeric allocations at the numpy
        # layer — both the python and the scipy matrix paths create one.
        def guarded(allocate):
            def wrapped(*args, **kwargs):
                out = allocate(*args, **kwargs)
                if (
                    getattr(out, "ndim", 0) == 2
                    and out.shape[0] == out.shape[1]
                    and out.shape[0] > 8
                    and out.dtype in (np.int64, np.float64)
                ):
                    raise AssertionError(
                        f"square {out.dtype} matrix of shape {out.shape} "
                        "allocated on the search path"
                    )
                return out

            return wrapped

        for name in ("empty", "zeros", "full"):
            monkeypatch.setattr(np, name, guarded(getattr(np, name)))

        H = h_digraph(2, 16, 2)
        assert h_diameter(H) == 4
        assert h_diameter(H, upper_bound=2) == 3  # sentinel: too large
        result = degree_diameter_search(2, 4, 14, 17)
        assert result.splits_for(16) == [(2, 16), (4, 8)]


class TestTable1:
    def test_table1_diameter_8_block_around_debruijn(self):
        # The rows 253..258 of Table 1, including the three splits at n=256.
        result = table1_rows(8, n_min=253, n_max=258)
        assert result.splits_for(253) == [(2, 253)]
        assert result.splits_for(254) == [(2, 254)]
        assert result.splits_for(255) == [(2, 255)]
        assert result.splits_for(256) == [(2, 256), (4, 128), (16, 32)]
        assert result.splits_for(257) == []  # the paper's table skips 257
        assert result.splits_for(258) == [(2, 258)]

    def test_table1_comparison_helper(self):
        result = table1_rows(8, n_min=253, n_max=258)
        report = compare_with_paper(result)
        assert report["all_match"]
        assert report["rows_compared"] == 5

    def test_table1_kautz_top_row_diameter_8(self):
        result = table1_rows(8, n_min=384, n_max=384)
        assert result.splits_for(384) == [(2, 384)]

    def test_printed_rows_only_mode(self):
        result = table1_rows(9, printed_rows_only=True, n_min=509, n_max=513)
        assert result.splits_for(512) == [(2, 512), (8, 128)]
        assert result.splits_for(509) == [(2, 509)]

    def test_unknown_diameter_requires_range(self):
        with pytest.raises(ValueError):
            table1_rows(6)

    def test_paper_table_constants(self):
        # The stored table's landmark rows match the closed-form orders.
        for D in (8, 9, 10):
            ns = [n for n, _ in PAPER_TABLE1[D]]
            assert 2**D in ns  # de Bruijn row
            assert 3 * 2 ** (D - 1) == ns[-1]  # Kautz row is the largest

    def test_diameters_of_named_digraphs(self):
        # Independent confirmation that the table's landmarks have the right
        # diameter through the direct generators.
        assert diameter(de_bruijn(2, 8)) == 8
        assert diameter(kautz(2, 8)) == 8
