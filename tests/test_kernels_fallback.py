"""Dispatch, fallback and identity semantics of :mod:`repro.kernels`.

Three contracts beyond bit-identity (which ``test_kernel_parity.py`` owns):

* **Fallback** — the compiled backends are an optimisation, never a
  dependency: ``REPRO_KERNELS=numpy`` forces the original vectorised
  paths, a numba-less environment (simulated here by failing its import)
  degrades silently under ``auto``, and an *explicitly* requested but
  unavailable backend warns and falls back rather than erroring.
* **Identity** — the active backend is part of ``code_version()`` /
  ``sim_code_version()``: switching backends renames every chunk and cache
  file, so on-disk results can never silently mix code paths.  Resuming a
  replica-chunk store under a different backend fails fast with
  :class:`~repro.otis.sweep.StoreIdentityError`; a
  :class:`~repro.otis.sweep.SplitVerdictCache` starts cold in a fresh
  file.
* **Surfacing** — ``warmup()`` compiles end to end, ``diagnostics()``
  reports every backend's availability, and the engines/sweeps expose the
  resolved name (``kernel_backend``) all the way into their JSON.
"""

import builtins

import pytest

from repro import kernels
from repro.otis.h_digraph import h_digraph
from repro.otis.sweep import SplitVerdictCache, StoreIdentityError, code_version
from repro.simulation.network import BatchedNetworkSimulator, LinkModel
from repro.simulation.sharding import (
    ReplicaChunkManifest,
    run_replica_shard,
    sim_code_version,
)
from repro.simulation.workloads import run_throughput_sweep, uniform_random_pairs

GRAPH = h_digraph(4, 8, 2)


@pytest.fixture
def fresh_probes():
    """Reset the backend probe cache around a test that fakes availability."""
    kernels._reset_probe_cache()
    yield
    kernels._reset_probe_cache()


class TestResolution:
    def test_numpy_always_available(self):
        assert "numpy" in kernels.available_backends()
        assert kernels.resolve_backend("numpy") == "numpy"

    def test_env_var_forces_numpy(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert kernels.resolve_backend() == "numpy"
        assert kernels.active_backend() == "numpy"
        sim = BatchedNetworkSimulator(GRAPH)
        assert sim.kernel_backend == "numpy"
        assert sim._kernels is None

    def test_unknown_name_is_a_typo_not_a_fallback(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve_backend("fortran")

    def test_explicit_unavailable_backend_warns_and_falls_back(
        self, monkeypatch, fresh_probes
    ):
        monkeypatch.setattr(kernels, "_probe", lambda b: b == "numpy")
        with pytest.warns(RuntimeWarning, match="unavailable"):
            assert kernels.resolve_backend("numba") == "numpy"

    def test_auto_prefers_compiled_backends(self):
        resolved = kernels.resolve_backend("auto")
        available = kernels.available_backends()
        assert resolved == available[0]

    def test_numba_absent_degrades_silently(self, monkeypatch, fresh_probes):
        real_import = builtins.__import__

        def no_numba(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("No module named 'numba' (simulated)")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_numba)
        monkeypatch.delitem(
            __import__("sys").modules, "repro.kernels.numba_backend", raising=False
        )
        assert "numba" not in kernels.available_backends()
        # auto must not raise — it falls through to cnative or numpy.
        assert kernels.resolve_backend("auto") in ("cnative", "numpy")

    def test_auto_keeps_numpy_path_for_sparse_workloads(self, monkeypatch):
        # Rate-limited injection means thousands of tiny rounds; under
        # "auto" the simulator keeps the numpy scalar fast path for those,
        # while an explicitly named backend is always honoured.
        if kernels.resolve_backend("auto") == "numpy":
            pytest.skip("no compiled backend available")
        # an outer REPRO_KERNELS (e.g. the CI numpy leg) would force both
        # simulators; this test is about genuine "auto" resolution
        monkeypatch.setenv(kernels.ENV_VAR, "auto")
        entered = []
        for sim in (
            BatchedNetworkSimulator(GRAPH),  # auto
            BatchedNetworkSimulator(GRAPH, kernels=kernels.resolve_backend()),
        ):
            assert sim._kernels is not None
            real = sim._kernels.make_round_driver

            def spy(*args, _real=real, **kwargs):
                entered.append(sim.kernel_backend)
                return _real(*args, **kwargs)

            monkeypatch.setattr(sim._kernels, "make_round_driver", spy)
            sparse = [(i % 4, (i + 1) % 4, float(i)) for i in range(64)]
            dense = [(i % 4, (i + 1) % 4, 0.0) for i in range(64)]
            sparse_n = len(entered)
            sim.run(sparse)
            sparse_used = len(entered) - sparse_n
            dense_n = len(entered)
            sim.run(dense)
            dense_used = len(entered) - dense_n
            monkeypatch.undo()
            if sim._kernels_forced:
                assert sparse_used == 1 and dense_used == 1
            else:
                assert sparse_used == 0 and dense_used == 1

    def test_numpy_forced_simulation_matches_auto(self, monkeypatch):
        # The fallback is not merely "doesn't crash": forced-numpy results
        # equal whatever the auto backend produces (bit-identity contract).
        traffic = uniform_random_pairs(GRAPH.num_vertices, 40, rng=9)
        auto = BatchedNetworkSimulator(GRAPH).run_many([traffic])
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        forced = BatchedNetworkSimulator(GRAPH).run_many([traffic])
        assert [s for s, _ in forced] == [s for s, _ in auto]


class TestWarmupAndDiagnostics:
    def test_warmup_returns_resolved_backend(self):
        name = kernels.warmup()
        assert name in kernels.KERNEL_BACKENDS

    def test_warmup_numpy_is_a_noop(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert kernels.warmup() == "numpy"

    def test_diagnostics_lists_every_backend(self):
        report = kernels.diagnostics()
        for backend in kernels.KERNEL_BACKENDS:
            assert backend in report
        assert kernels.ENV_VAR in report

    def test_cli_version_prints_diagnostics(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--version"])
        out = capsys.readouterr().out
        assert "repro " in out
        assert "kernels:" in out


class TestCodeIdentity:
    def test_code_versions_change_with_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        sweep_numpy = code_version()
        sim_numpy = sim_code_version()
        # Fake a different active backend: the fingerprint must move even
        # though no source file changed.
        monkeypatch.setattr(kernels, "active_backend", lambda: "numba")
        assert code_version() != sweep_numpy
        assert sim_code_version() != sim_numpy
        # ... and stay stable/hex-formatted.
        assert code_version() == code_version()
        assert len(code_version()) == 12
        int(code_version(), 16)

    def test_resume_after_backend_switch_is_rejected(self, monkeypatch, tmp_path):
        # Fill a replica-chunk store under one backend, then relaunch/merge
        # under another: the persisted identity must fail fast, naming
        # code_version, before any simulation runs.
        link = LinkModel(latency=1.0, transmission_time=1.0)
        traffics = [
            uniform_random_pairs(GRAPH.num_vertices, 30, rng=seed)
            for seed in range(4)
        ]
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        manifest = ReplicaChunkManifest.build(
            GRAPH, traffics, link=link, chunk_size=2
        )
        run_replica_shard(manifest, tmp_path, GRAPH, traffics)

        monkeypatch.setattr(kernels, "active_backend", lambda: "numba")
        switched = ReplicaChunkManifest.build(
            GRAPH, traffics, link=link, chunk_size=2
        )
        assert switched.code_version != manifest.code_version
        with pytest.raises(StoreIdentityError, match="code_version"):
            run_replica_shard(switched, tmp_path, GRAPH, traffics, resume=True)

    def test_split_verdict_cache_starts_cold_on_backend_switch(
        self, monkeypatch, tmp_path
    ):
        # The verdict cache keys its file name by code_version: a backend
        # switch must open a different (empty) file, never reuse verdicts.
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        cache_numpy = SplitVerdictCache(tmp_path, 2, 6)
        cache_numpy.put(4, 16, 6)
        monkeypatch.setattr(kernels, "active_backend", lambda: "numba")
        cache_other = SplitVerdictCache(tmp_path, 2, 6)
        assert cache_other.path != cache_numpy.path
        assert cache_other.get(4, 16) is None


class TestSweepSurfacing:
    def test_throughput_sweep_records_backend(self):
        sweep = run_throughput_sweep(
            GRAPH, seeds=range(1), num_messages=50
        )
        assert sweep.kernel_backend == kernels.active_backend()
        assert sweep.to_json()["kernel_backend"] == sweep.kernel_backend

    def test_event_engine_records_numpy(self):
        sweep = run_throughput_sweep(
            GRAPH, seeds=range(1), num_messages=30, engine="event"
        )
        assert sweep.kernel_backend == "numpy"
