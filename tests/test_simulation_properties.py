"""Property-based tests (hypothesis) for the batched simulator engine.

Three families of invariants, per the batched-engine contract:

* **Conservation** — every injected message is accounted for at drain:
  ``delivered + undelivered == injected``, undelivered messages are exactly
  the unreachable ones, and on strongly connected topologies everything
  drains.
* **FIFO per link** — the transmission trace of the batched engine serves
  each physical link in chronological order with starts separated by at
  least the transmission time (the batching never reorders a link's queue).
* **Monotone throughput in link count** — adding parallel links between the
  same endpoints can only speed a fixed workload up (the multigraph capacity
  argument behind the paper's ``H(p, q, d)`` arc multisets).

Randomised engine-vs-reference parity over arbitrary regular digraphs and
collision-heavy timestamps rides along: it is the strongest single check of
the batch resolution order.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import Digraph, RegularDigraph
from repro.graphs.generators import de_bruijn
from repro.simulation.network import (
    BatchedNetworkSimulator,
    LinkModel,
    NetworkSimulator,
)


# ---------------------------------------------------------------- strategies
@st.composite
def regular_digraphs(draw, max_nodes=8, max_degree=3):
    """Arbitrary out-regular digraphs (loops and parallel arcs included)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    d = draw(st.integers(min_value=1, max_value=max_degree))
    successors = draw(
        st.lists(
            st.lists(st.integers(0, n - 1), min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
    return RegularDigraph(np.array(successors, dtype=np.int64))


@st.composite
def traffics(draw, num_nodes, max_messages=25):
    """Traffic with deliberately colliding integer/quarter timestamps."""
    count = draw(st.integers(min_value=0, max_value=max_messages))
    quarters = st.integers(min_value=0, max_value=12)
    return [
        (
            draw(st.integers(0, num_nodes - 1)),
            draw(st.integers(0, num_nodes - 1)),
            draw(quarters) / 4.0,
        )
        for _ in range(count)
    ]


# ------------------------------------------------------------- conservation
@given(graph=regular_digraphs(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_conservation_at_drain(graph, data):
    traffic = data.draw(traffics(graph.num_vertices))
    simulator = BatchedNetworkSimulator(graph, link=LinkModel(1.0, 1.0))
    stats, messages = simulator.run(traffic)
    # injected == delivered + in-flight; the queue has drained, so the only
    # in-flight remainder is the unreachable drops
    assert stats.delivered + stats.undelivered == len(traffic)
    assert sum(m.delivered for m in messages) == stats.delivered
    distance = simulator.routing.distance
    unreachable = sum(1 for s, t, _ in traffic if distance[s, t] < 0)
    assert stats.undelivered == unreachable


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_everything_drains_on_strongly_connected(seed):
    graph = de_bruijn(2, 3)
    rng = np.random.default_rng(seed)
    traffic = [
        (int(rng.integers(8)), int(rng.integers(8)), float(rng.integers(4)))
        for _ in range(30)
    ]
    stats, _ = BatchedNetworkSimulator(graph).run(traffic)
    assert stats.undelivered == 0
    assert stats.delivered == 30


# ------------------------------------------------------------ FIFO per link
@given(seed=st.integers(0, 2**31 - 1), hot=st.booleans())
@settings(max_examples=25, deadline=None)
def test_fifo_service_per_link(seed, hot):
    from repro.simulation.workloads import hotspot_pairs, uniform_random_pairs

    graph = de_bruijn(2, 3)
    link = LinkModel(latency=1.0, transmission_time=0.5)
    n = graph.num_vertices
    traffic = (
        hotspot_pairs(n, 40, hotspot=0, hotspot_fraction=0.8, rng=seed)
        if hot
        else uniform_random_pairs(n, 40, rng=seed)
    )
    trace: list = []
    simulator = BatchedNetworkSimulator(graph, link=link)
    stats, _ = simulator.run(traffic, trace=trace)
    assert stats.delivered == 40
    links = np.concatenate([chunk[0] for chunk in trace])
    starts = np.concatenate([chunk[1] for chunk in trace])
    # the trace is chronological; per link, service must be FIFO with a full
    # transmission time between consecutive starts
    for link_id in np.unique(links):
        series = starts[links == link_id]
        gaps = np.diff(series)
        assert np.all(gaps >= link.transmission_time - 1e-12)


# --------------------------------------- monotone throughput in link count
def _parallel_pipe(width):
    """Two nodes, ``width`` parallel arcs forward, one return arc."""
    arcs = [(0, 1)] * width + [(1, 0)]
    return Digraph(2, arcs=arcs)


@given(
    messages=st.integers(min_value=1, max_value=40),
    widths=st.tuples(st.integers(1, 6), st.integers(1, 6)).map(sorted),
    transmission=st.sampled_from([0.25, 0.5, 1.0, 2.0]),
)
@settings(max_examples=40, deadline=None)
def test_monotone_throughput_in_link_count(messages, widths, transmission):
    narrow, wide = widths
    traffic = [(0, 1, 0.0)] * messages
    link = LinkModel(latency=1.0, transmission_time=transmission)
    results = {}
    for width in (narrow, wide):
        stats, _ = BatchedNetworkSimulator(_parallel_pipe(width), link=link).run(
            traffic
        )
        assert stats.delivered == messages
        results[width] = stats
    # more parallel (u, v) channels can only shrink the makespan of a fixed
    # workload, hence throughput is monotone in the link count
    assert results[wide].makespan <= results[narrow].makespan
    assert results[wide].throughput() >= results[narrow].throughput()
    # exact capacity law for the saturated pipe: ceil(M / width) serial slots
    expected = math.ceil(messages / wide) * transmission + link.latency
    assert results[wide].makespan == pytest.approx(expected)


# ----------------------------------------------------- randomised parity
@given(graph=regular_digraphs(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_random_parity_with_reference(graph, data):
    traffic = data.draw(traffics(graph.num_vertices))
    link = LinkModel(
        latency=data.draw(st.sampled_from([0.0, 0.5, 1.0])),
        transmission_time=data.draw(st.sampled_from([0.0, 0.25, 1.0])),
    )
    ref_stats, ref_messages = NetworkSimulator(graph, link=link).run(traffic)
    bat_stats, bat_messages = BatchedNetworkSimulator(graph, link=link).run(traffic)
    assert bat_stats == ref_stats
    for ref, bat in zip(ref_messages, bat_messages):
        assert bat.hops == ref.hops
        if math.isnan(ref.arrival_time):
            assert math.isnan(bat.arrival_time)
        else:
            assert bat.arrival_time == ref.arrival_time
