"""Property-based tests (hypothesis) on the core data structures and invariants.

These complement the example-based unit tests with randomised coverage of the
algebraic identities the paper's constructions rely on:

* word codec round-trips and shift identities,
* permutation group axioms (inverses, powers, conjugation, cyclicity),
* OTIS wiring bijectivity for arbitrary (p, q),
* Propositions 3.2 / 3.9 for random alphabet and index permutations,
* Corollary 4.2's O(D) check against the generic isomorphism tester,
* routing-table consistency for random regular digraphs,
* de Bruijn distance formula vs BFS.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet_digraph import AlphabetDigraphSpec, b_sigma
from repro.core.checks import is_otis_layout_of_de_bruijn
from repro.core.isomorphisms import (
    debruijn_to_alphabet_isomorphism,
    prop_3_2_isomorphism,
)
from repro.graphs.digraph import RegularDigraph
from repro.graphs.generators import de_bruijn
from repro.graphs.isomorphism import are_isomorphic, is_isomorphism
from repro.graphs.traversal import bfs_distances, bfs_distances_regular
from repro.otis.architecture import OTISArchitecture
from repro.otis.h_digraph import h_digraph
from repro.permutations import Permutation
from repro.routing.paths import build_routing_table, debruijn_distance
from repro.words import int_to_word, word_to_int


# ---------------------------------------------------------------- strategies
def permutation_strategy(n: int):
    return st.permutations(list(range(n))).map(Permutation)


small_d = st.integers(min_value=2, max_value=4)
small_D = st.integers(min_value=2, max_value=4)


# --------------------------------------------------------------------- words
@given(d=st.integers(2, 6), D=st.integers(1, 6), data=st.data())
def test_word_roundtrip(d, D, data):
    value = data.draw(st.integers(0, d**D - 1))
    word = int_to_word(value, d, D)
    assert len(word) == D
    assert all(0 <= letter < d for letter in word)
    assert word_to_int(word, d) == value


@given(d=st.integers(2, 5), D=st.integers(2, 5), data=st.data())
def test_debruijn_distance_formula_matches_bfs(d, D, data):
    n = d**D
    source = data.draw(st.integers(0, n - 1))
    graph = de_bruijn(d, D)
    dist = bfs_distances_regular(graph, source)
    target = data.draw(st.integers(0, n - 1))
    assert debruijn_distance(source, target, d, D) == dist[target]


# -------------------------------------------------------------- permutations
@given(data=st.data(), n=st.integers(1, 8))
def test_permutation_inverse_and_power_laws(data, n):
    p = data.draw(permutation_strategy(n))
    assert (p * p.inverse()).is_identity()
    assert (p.inverse() * p).is_identity()
    k = data.draw(st.integers(0, 6))
    # p^(k+1) = p o p^k  (the paper's inductive definition of powers)
    assert (p ** (k + 1)).as_tuple() == (p * (p**k)).as_tuple()
    # the order of p divides lcm of its cycle lengths (in fact equals it)
    assert (p ** p.order()).is_identity()


@given(data=st.data(), n=st.integers(2, 8))
def test_cyclicity_equals_single_cycle(data, n):
    p = data.draw(permutation_strategy(n))
    assert p.is_cyclic() == (len(p.cycles()) == 1)
    assert sum(len(c) for c in p.cycles()) == n


# ---------------------------------------------------------------- OTIS wiring
@given(p=st.integers(1, 12), q=st.integers(1, 12))
def test_otis_wiring_is_bijective(p, q):
    otis = OTISArchitecture(p, q)
    wiring = otis.connection_array()
    assert sorted(wiring.tolist()) == list(range(p * q))
    assert otis.num_lenses == p + q


@given(p=st.integers(1, 8), q=st.integers(1, 8), data=st.data())
def test_otis_inverse_wiring(p, q, data):
    otis = OTISArchitecture(p, q)
    i = data.draw(st.integers(0, p - 1))
    j = data.draw(st.integers(0, q - 1))
    a, b = otis.receiver_of(i, j)
    assert otis.transmitter_of(a, b) == (i, j)


# ------------------------------------------------------- H(p, q, d) degrees
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_h_digraph_regularity(data):
    d = data.draw(st.integers(1, 3))
    n = data.draw(st.integers(2, 40))
    m = n * d
    divisors = [p for p in range(1, m + 1) if m % p == 0]
    p = data.draw(st.sampled_from(divisors))
    q = m // p
    H = h_digraph(p, q, d)
    assert H.num_vertices == n
    assert H.degree == d
    assert np.all(H.in_degrees() == d)  # OTIS wiring is a bijection


# ------------------------------------------------- Propositions 3.2 and 3.9
@given(d=small_d, D=small_D, data=st.data())
@settings(max_examples=25, deadline=None)
def test_prop_3_2_random_sigma(d, D, data):
    sigma = data.draw(permutation_strategy(d))
    mapping = prop_3_2_isomorphism(d, D, sigma)
    assert is_isomorphism(b_sigma(d, D, sigma), de_bruijn(d, D), mapping)


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_prop_3_9_random_cyclic_spec(data):
    d = data.draw(st.integers(2, 3))
    D = data.draw(st.integers(2, 4))
    sigma = data.draw(permutation_strategy(d))
    # Build a random cyclic permutation from a random ordering of Z_D.
    order = data.draw(st.permutations(list(range(D))))
    mapping_array = np.empty(D, dtype=np.int64)
    for index in range(D):
        mapping_array[order[index]] = order[(index + 1) % D]
    f = Permutation(mapping_array)
    j = data.draw(st.integers(0, D - 1))
    spec = AlphabetDigraphSpec(d=d, D=D, f=f, sigma=sigma, j=j)
    mapping = debruijn_to_alphabet_isomorphism(spec)
    assert is_isomorphism(de_bruijn(d, D), spec.build(), mapping)


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_prop_3_9_non_cyclic_is_not_debruijn(data):
    """Non-cyclic f => A(f, sigma, j) is NOT isomorphic to B(d, D).

    Note: the paper's stronger phrasing ("otherwise A(f, sigma, j) is not
    connected") fails for some non-identity sigma — e.g. A(Id, C, 0) with
    d = D = 2 equals B(2,1) (x) C_2, which is strongly connected — so the
    invariant tested here is the isomorphism claim, which always holds.  The
    connectivity claim is tested separately for sigma = identity, where it is
    correct (see EXPERIMENTS.md, deviation note D1).
    """
    d = data.draw(st.integers(2, 3))
    D = data.draw(st.integers(2, 3))
    f = data.draw(permutation_strategy(D))
    sigma = data.draw(permutation_strategy(d))
    j = data.draw(st.integers(0, D - 1))
    spec = AlphabetDigraphSpec(d=d, D=D, f=f, sigma=sigma, j=j)
    graph = spec.build()
    assert are_isomorphic(de_bruijn(d, D), graph) == f.is_cyclic()


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_prop_3_9_non_cyclic_identity_sigma_is_disconnected(data):
    """With sigma = identity, non-cyclic f always disconnects the digraph."""
    from repro.permutations import identity as identity_perm

    d = data.draw(st.integers(2, 3))
    D = data.draw(st.integers(2, 4))
    f = data.draw(permutation_strategy(D))
    j = data.draw(st.integers(0, D - 1))
    spec = AlphabetDigraphSpec(d=d, D=D, f=f, sigma=identity_perm(d), j=j)
    graph = spec.build()
    forward_connected = not np.any(bfs_distances(graph, 0) < 0)
    backward_connected = not np.any(bfs_distances(graph.reverse(), 0) < 0)
    connected = forward_connected and backward_connected
    assert connected == f.is_cyclic()


# --------------------------------------------------------- Corollary 4.2/4.5
@given(p_prime=st.integers(1, 4), q_prime=st.integers(1, 4))
@settings(max_examples=16, deadline=None)
def test_structural_check_matches_generic_isomorphism(p_prime, q_prime):
    d = 2
    D = p_prime + q_prime - 1
    verdict = is_otis_layout_of_de_bruijn(d, p_prime, q_prime)
    H = h_digraph(d**p_prime, d**q_prime, d)
    assert verdict == are_isomorphic(de_bruijn(d, D), H)


# ------------------------------------------------------------------- routing
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_routing_table_consistent_on_random_regular_digraphs(data):
    n = data.draw(st.integers(2, 20))
    d = data.draw(st.integers(1, 3))
    successors = data.draw(
        st.lists(
            st.lists(st.integers(0, n - 1), min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
    graph = RegularDigraph(successors)
    table = build_routing_table(graph)
    assert table.is_consistent(graph)
