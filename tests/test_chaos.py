"""Chaos tests: the seeded fault-injection harness and what it proves.

Three layers:

* unit tests of the harness itself (``repro.chaos``) — schedule determinism
  and order-independence, fault budgets, injector scoping/restoration, the
  torn-write and swallowed-heartbeat fault shapes;
* a fast fixed-seed subset (always runs) driving the real production seams —
  ``run_sweep``/``merge_sweep`` resume, the lease claim/heartbeat/reclaim
  cycle on an injected clock, a mid-split interruption, and the serve
  registry's degrade-to-last-good reload — under a handful of schedules;
* the full sweeps behind ``@pytest.mark.chaos`` (``--run-chaos``): 224
  seeded fault schedules in total (120 sweep-resume, 80 lease-protocol,
  24 mid-split), each asserting the acceptance contract: **no double
  claims, no corrupt merges, byte-identical convergence to the fault-free
  result** once the fault budget is spent.

Every schedule caps its injections (``max_faults``), so "retry until it
converges" terminates by construction — a loop that does not converge within
``max_faults + 1`` attempts is a genuine robustness bug, and the tests fail
it loudly rather than spinning.
"""

import io
import json
import os
import warnings
from pathlib import Path

import pytest

from repro.chaos import (
    DEFAULT_KINDS,
    ChaosClock,
    ChaosFault,
    ChaosInjector,
    ChaosSchedule,
)
from repro.fleet.leases import LeaseManager
from repro.otis.sweep import (
    ChunkManifest,
    ChunkStore,
    assemble_split,
    merge_sweep,
    run_chunk,
    run_sweep,
    split_chunk,
)
from repro.serve.registry import RouterRegistry

#: Fixed stand-in for :func:`repro.otis.sweep.code_version` — keeps the tiny
#: chaos manifests' chunk ids stable across kernel backends and source edits
#: (the chaos suite tests the I/O seams, not the verdict code).
CODE_VERSION = "chaos-test-v1"

#: Seed ranges.  The ``FAST_*`` subsets always run; the full ranges are the
#: ``--run-chaos`` acceptance sweeps (224 schedules in total).
FAST_SWEEP_SEEDS = range(12)
FULL_SWEEP_SEEDS = range(12, 132)  # 120 schedules
FAST_LEASE_SEEDS = range(1000, 1006)
FULL_LEASE_SEEDS = range(1006, 1086)  # 80 schedules
FAST_SPLIT_SEEDS = range(5000, 5002)
FULL_SPLIT_SEEDS = range(5002, 5026)  # 24 schedules


def tiny_manifest(chunk_size: int = 2) -> ChunkManifest:
    return ChunkManifest.build(
        2, 4, [16], chunk_size=chunk_size, code_version=CODE_VERSION
    )


def chunk_records(chunk) -> list[dict]:
    """Fault-free records of one chunk (no cache, pure computation)."""
    return run_chunk((2, 4, chunk.items, None, CODE_VERSION))


# ---------------------------------------------------------------------------
# ChaosSchedule: determinism, order-independence, budgets, normalisation
# ---------------------------------------------------------------------------
class TestChaosSchedule:
    OPS = [
        ("write", "chunk-aa.jsonl"),
        ("fsync", "chunk-aa.jsonl"),
        ("rename", "chunk-aa.jsonl"),
        ("write", "chunk-bb.jsonl"),
        ("utime", "aa.lease"),
        ("read-open", "manifest.json"),
        ("link", "aa.lease"),
        ("unlink", "aa.lease"),
    ]

    def drive(self, schedule: ChaosSchedule, rounds: int = 20) -> list:
        for _ in range(rounds):
            for op, name in self.OPS:
                schedule.decide(op, name)
        return schedule.log

    def test_same_seed_same_log(self):
        first = self.drive(ChaosSchedule(7))
        second = self.drive(ChaosSchedule(7))
        assert first == second
        assert first  # the default rates do inject something in 160 ops

    def test_different_seeds_diverge(self):
        logs = {tuple(self.drive(ChaosSchedule(seed))) for seed in range(5)}
        assert len(logs) == 5

    def test_decisions_are_order_independent_across_files(self):
        # Interleaved vs file-grouped operation orders must produce the
        # same per-(op, name, count) decisions — the property that makes
        # replay survive thread scheduling differences.
        interleaved = ChaosSchedule(3)
        for _ in range(15):
            interleaved.decide("write", "chunk-aa.jsonl")
            interleaved.decide("write", "chunk-bb.jsonl")
        grouped = ChaosSchedule(3)
        for _ in range(15):
            grouped.decide("write", "chunk-aa.jsonl")
        for _ in range(15):
            grouped.decide("write", "chunk-bb.jsonl")
        key = lambda e: (e.op, e.name, e.count)  # noqa: E731
        assert {key(e): e.kind for e in interleaved.log} == {
            key(e): e.kind for e in grouped.log
        }

    def test_zero_rates_never_fault(self):
        schedule = ChaosSchedule(1, rates={op: 0.0 for op in DEFAULT_KINDS})
        assert not self.drive(schedule, rounds=50)
        assert schedule.injected == 0

    def test_unknown_op_never_faults(self):
        schedule = ChaosSchedule(1)
        assert all(
            schedule.decide("mmap", "chunk-aa.jsonl") is None for _ in range(100)
        )

    def test_max_faults_budget_is_exact(self):
        schedule = ChaosSchedule(
            2, rates={"write": 1.0}, kinds={"write": ("eio",)}, max_faults=3
        )
        kinds = [schedule.decide("write", "chunk-aa.jsonl") for _ in range(10)]
        assert kinds[:3] == ["eio"] * 3
        assert kinds[3:] == [None] * 7
        assert schedule.injected == 3

    def test_normalize_collapses_random_tmp_names(self):
        assert ChaosSchedule.normalize("/a/b/.tmp-1234-cafe.jsonl") == ".tmp"
        assert ChaosSchedule.normalize(Path("/x/.tmp-9-beef")) == ".tmp"
        assert (
            ChaosSchedule.normalize("/a/b/chunk-0011.jsonl") == "chunk-0011.jsonl"
        )
        assert ChaosSchedule.normalize("abc123.lease") == "abc123.lease"


# ---------------------------------------------------------------------------
# ChaosInjector: scoping, errno fidelity, fault shapes, restoration
# ---------------------------------------------------------------------------
def always(op: str, kind: str, *, max_faults: int | None = None) -> ChaosSchedule:
    """A schedule injecting ``kind`` on every ``op`` (until the budget)."""
    return ChaosSchedule(
        0, rates={op: 1.0}, kinds={op: (kind,)}, max_faults=max_faults
    )


class TestChaosInjector:
    def test_fault_is_oserror_with_real_errno(self, tmp_path):
        with ChaosInjector(always("open", "eio"), roots=[tmp_path]):
            with pytest.raises(ChaosFault) as excinfo:
                open(tmp_path / "x.txt", "w")
        assert isinstance(excinfo.value, OSError)
        assert excinfo.value.errno == 17 or excinfo.value.errno > 0
        import errno as errno_mod

        assert excinfo.value.errno == errno_mod.EIO
        assert excinfo.value.kind == "eio"
        assert excinfo.value.op == "open"

    def test_out_of_scope_paths_pass_through(self, tmp_path):
        inside, outside = tmp_path / "in", tmp_path / "out"
        inside.mkdir(), outside.mkdir()
        with ChaosInjector(always("open", "eio"), roots=[inside]):
            (outside / "ok.txt").write_text("fine")
        assert (outside / "ok.txt").read_text() == "fine"

    def test_injectors_refuse_to_nest(self, tmp_path):
        with ChaosInjector(ChaosSchedule(0), roots=[tmp_path]):
            with pytest.raises(RuntimeError, match="already active"):
                ChaosInjector(ChaosSchedule(1), roots=[tmp_path]).__enter__()

    def test_originals_restored_on_exit(self, tmp_path):
        saved = (os.open, os.write, os.replace, os.link, os.utime, io.open, open)
        with ChaosInjector(ChaosSchedule(0), roots=[tmp_path]):
            assert os.open is not saved[0]
        assert (os.open, os.write, os.replace, os.link, os.utime, io.open, open) == (
            saved
        )
        (tmp_path / "sanity.txt").write_text("post-exit writes work")

    def test_torn_write_leaves_half_the_payload(self, tmp_path):
        target = tmp_path / "torn.bin"
        with ChaosInjector(always("write", "torn", max_faults=1), roots=[tmp_path]):
            fd = os.open(target, os.O_CREAT | os.O_WRONLY)
            try:
                with pytest.raises(ChaosFault, match="torn"):
                    os.write(fd, b"0123456789")
            finally:
                os.close(fd)
        assert target.read_bytes() == b"01234"  # exactly half landed

    def test_lost_utime_swallows_the_heartbeat(self, tmp_path):
        target = tmp_path / "hb.lease"
        target.write_text("{}")
        os.utime(target, (1000.0, 1000.0))
        with ChaosInjector(always("utime", "lost", max_faults=1), roots=[tmp_path]):
            os.utime(target, (2000.0, 2000.0))  # swallowed: no error, no effect
        assert target.stat().st_mtime == 1000.0
        os.utime(target, (2000.0, 2000.0))  # budget spent: applies normally
        assert target.stat().st_mtime == 2000.0

    def test_lost_rename_never_publishes(self, tmp_path):
        source, target = tmp_path / "a.txt", tmp_path / "b.txt"
        source.write_text("payload")
        with ChaosInjector(
            always("rename", "lost", max_faults=1), roots=[tmp_path]
        ):
            os.replace(source, target)  # silently not applied
        assert source.exists() and not target.exists()

    def test_applied_eio_rename_both_applies_and_raises(self, tmp_path):
        source, target = tmp_path / "a.txt", tmp_path / "b.txt"
        source.write_text("payload")
        with ChaosInjector(
            always("rename", "applied-eio", max_faults=1), roots=[tmp_path]
        ):
            with pytest.raises(ChaosFault):
                os.replace(source, target)
        assert target.read_text() == "payload" and not source.exists()


class TestChaosClock:
    def test_advance_moves_both_clocks(self):
        clock = ChaosClock(start=100.0)
        clock.advance(5.0)
        assert clock.time() == 105.0 and clock.monotonic() == 105.0

    def test_skew_offsets_wall_time_only(self):
        clock = ChaosClock(start=100.0, skew=7.0)
        assert clock.time() == 107.0 and clock.monotonic() == 100.0

    def test_time_only_moves_forward(self):
        with pytest.raises(ValueError):
            ChaosClock().advance(-1.0)


# ---------------------------------------------------------------------------
# Sweep-resume chaos: retry run_sweep/merge_sweep until byte-identical
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def sweep_baseline(tmp_path_factory):
    """Fault-free reference: chunk files' bytes and the merged rows."""
    manifest = tiny_manifest()
    store = ChunkStore(tmp_path_factory.mktemp("baseline") / "store")
    run_sweep(manifest, store)
    chunk_bytes = {
        chunk.chunk_id: store.path_for(chunk).read_bytes()
        for chunk in manifest.chunks
    }
    return chunk_bytes, merge_sweep(manifest, store).rows


def converge_sweep(root: Path, seed: int, *, max_faults: int = 8):
    """One chaos schedule against run_sweep + merge_sweep, retried dry.

    Returns ``(manifest, store, merged_rows, schedule)``.  Any exception
    other than an injected :class:`ChaosFault` is a robustness bug and
    propagates to fail the test.
    """
    manifest = tiny_manifest()
    store_dir = root / "store"
    cache_dir = root / "cache"
    schedule = ChaosSchedule(seed, max_faults=max_faults)
    merged = None
    with warnings.catch_warnings():
        # Torn cache lines are recovered with a RuntimeWarning by design.
        warnings.simplefilter("ignore", RuntimeWarning)
        with ChaosInjector(schedule, roots=[root]):
            for attempt in range(max_faults + 2):
                try:
                    run_sweep(manifest, store_dir, resume=True, cache=cache_dir)
                    merged = merge_sweep(manifest, store_dir)
                    break
                except ChaosFault:
                    continue
                except FileNotFoundError:
                    # A *lost* rename let run_sweep return with a chunk
                    # silently unpublished; the resume pass above recomputes
                    # it — exactly how a relaunched sweep converges.
                    continue
            else:  # pragma: no cover - convergence bug
                pytest.fail(
                    f"seed {seed}: not converged after {max_faults + 2} "
                    f"attempts with a budget of {max_faults} faults"
                )
    return manifest, ChunkStore(store_dir), merged.rows, schedule


def assert_sweep_converged(root: Path, seed: int, baseline) -> int:
    baseline_bytes, baseline_rows = baseline
    manifest, store, rows, schedule = converge_sweep(root, seed)
    assert rows == baseline_rows
    for chunk in manifest.chunks:
        assert store.path_for(chunk).read_bytes() == baseline_bytes[chunk.chunk_id], (
            f"seed {seed}: chunk {chunk.chunk_id} bytes diverged "
            f"(faults: {schedule.log})"
        )
        store.read(chunk)  # footer still validates — no corrupt publication
    return schedule.injected


class TestSweepChaosFast:
    @pytest.mark.parametrize("seed", FAST_SWEEP_SEEDS)
    def test_sweep_converges_byte_identical(self, tmp_path, seed, sweep_baseline):
        assert_sweep_converged(tmp_path, seed, sweep_baseline)

    def test_fixed_seeds_do_inject(self, tmp_path, sweep_baseline):
        # Meta-check: the fast subset is not vacuous — across its seeds the
        # schedules actually fired faults into the production seams.
        total = sum(
            assert_sweep_converged(tmp_path / f"s{seed}", seed, sweep_baseline)
            for seed in FAST_SWEEP_SEEDS
        )
        assert total >= len(FAST_SWEEP_SEEDS)  # on average ≥1 fault per seed


@pytest.mark.chaos
class TestSweepChaosFull:
    @pytest.mark.parametrize("seed", FULL_SWEEP_SEEDS)
    def test_sweep_converges_byte_identical(self, tmp_path, seed, sweep_baseline):
        assert_sweep_converged(tmp_path, seed, sweep_baseline)


# ---------------------------------------------------------------------------
# Lease-protocol chaos: injected clock, swallowed heartbeats, no double claim
# ---------------------------------------------------------------------------
LEASE_TTL = 10.0

#: Rates tuned for the lease seams; ``link`` keeps its NFS-honest kinds from
#: DEFAULT_KINDS (no silent "lost" link — a lost NFS link reply means the op
#: WAS applied, which is exactly the ``applied-eio`` + ``st_nlink`` case).
LEASE_RATES = {
    "open": 0.05,
    "read-open": 0.08,
    "write": 0.05,
    "fsync": 0.05,
    "link": 0.10,
    "unlink": 0.08,
    "utime": 0.20,
}


def lease_chaos_round(root: Path, seed: int) -> dict:
    """Three simulated workers contending for one chunk over 120 fake seconds.

    Each round every worker either heartbeats its held lease, finishes a
    5-step hold (publishing only if ``owned()``), or attempts a claim.  The
    invariant asserted *every* round is mutual exclusion: at most one worker's
    lease verifies as owned.  Returns counters for the meta-assertions.
    """
    root.mkdir(parents=True, exist_ok=True)
    clock = ChaosClock()
    schedule = ChaosSchedule(seed, rates=LEASE_RATES, max_faults=12)
    managers = [
        LeaseManager(
            root, ttl=LEASE_TTL, clock=clock.time, monotonic=clock.monotonic
        )
        for _ in range(3)
    ]
    held: dict[int, tuple] = {}  # worker -> (lease, acquired_step)
    counts = {"acquired": 0, "published": 0, "lost": 0, "claim_faults": 0}
    with ChaosInjector(schedule, roots=[root]):
        for step in range(120):
            clock.advance(1.0)
            for w, manager in enumerate(managers):
                if w in held:
                    lease, since = held[w]
                    if step - since >= 5:  # "computation" done — publish?
                        if lease.owned():
                            counts["published"] += 1
                            lease.release()
                        else:
                            counts["lost"] += 1
                        del held[w]
                    else:
                        lease.refresh()  # heartbeat (maybe swallowed)
                elif (step + w) % 3 == 0:
                    try:
                        lease = manager.try_acquire("chunk01", worker=f"w{w}")
                    except ChaosFault:
                        counts["claim_faults"] += 1
                        lease = None
                    if lease is not None:
                        counts["acquired"] += 1
                        held[w] = (lease, step)
            # THE invariant: never two simultaneously verified owners.
            owners = [w for w, (lease, _) in held.items() if lease.owned()]
            assert len(owners) <= 1, (
                f"seed {seed} step {step}: double claim by workers {owners} "
                f"(faults so far: {schedule.log})"
            )
    # Liveness within the budget: work did complete despite the faults.
    assert counts["published"] >= 1, f"seed {seed}: no hold ever completed"
    # Post-chaos: the directory is never wedged — once the (fault-free)
    # dust settles a fresh manager can always claim the chunk.
    fresh = LeaseManager(
        root, ttl=LEASE_TTL, clock=clock.time, monotonic=clock.monotonic
    )
    lease = None
    for _ in range(6):
        lease = fresh.try_acquire("chunk01", worker="post")
        if lease is not None:
            break
        clock.advance(LEASE_TTL + 1.0)
    assert lease is not None, f"seed {seed}: chunk wedged after chaos"
    return counts


class TestLeaseChaosFast:
    @pytest.mark.parametrize("seed", FAST_LEASE_SEEDS)
    def test_no_double_claims_under_faults(self, tmp_path, seed):
        lease_chaos_round(tmp_path / "leases", seed)

    def test_swallowed_heartbeats_do_cause_reclaims(self, tmp_path):
        # Meta-check: the 20% lost-utime rate makes some seeds lose a live
        # lease to a reclaimer — the scenario the token check exists for.
        lost = sum(
            lease_chaos_round(tmp_path / f"l{seed}", seed)["lost"]
            for seed in FAST_LEASE_SEEDS
        )
        assert lost >= 1


@pytest.mark.chaos
class TestLeaseChaosFull:
    @pytest.mark.parametrize("seed", FULL_LEASE_SEEDS)
    def test_no_double_claims_under_faults(self, tmp_path, seed):
        lease_chaos_round(tmp_path / "leases", seed)


class TestLeaseClockSkew:
    """Deterministic (fault-free) clock-semantics tests on the injected clock."""

    def test_skewed_observer_cannot_steal_within_margin(self, tmp_path):
        clock = ChaosClock(start=1000.0)
        owner = LeaseManager(
            tmp_path, ttl=10.0, clock=clock.time, monotonic=clock.monotonic
        )
        lease = owner.try_acquire("c", worker="owner")
        # Fake a file mtime the wall-clock path can reason about.
        stamp = clock.time()
        os.utime(lease.path, (stamp, stamp))
        fast = ChaosClock(start=1000.0, skew=12.0)  # wall clock runs 12 s fast
        observer = LeaseManager(
            tmp_path,
            ttl=10.0,
            clock=fast.time,
            monotonic=fast.monotonic,
            clock_skew=15.0,
        )
        # Wall age reads 12 s — past the raw TTL, inside the skew margin.
        assert observer.try_acquire("c", worker="thief") is None
        assert lease.owned()

    def test_unskewed_observer_reclaims_after_ttl(self, tmp_path):
        clock = ChaosClock(start=1000.0)
        manager = LeaseManager(
            tmp_path, ttl=10.0, clock=clock.time, monotonic=clock.monotonic
        )
        lease = manager.try_acquire("c", worker="dead")
        stamp = clock.time()
        os.utime(lease.path, (stamp, stamp))
        clock.advance(11.0)  # one TTL + 1 with no heartbeat
        taken = manager.try_acquire("c", worker="alive")
        assert taken is not None and taken.worker == "alive"

    def test_observation_path_expires_frozen_mtime_without_wall_clock(
        self, tmp_path
    ):
        # The file's real mtime is "in the future" of the injected wall clock
        # (age clamps to 0), so only the monotonic observation path can ever
        # call it expired — exactly the no-clock-agreement scenario.
        clock = ChaosClock(start=1000.0)
        manager = LeaseManager(
            tmp_path, ttl=10.0, clock=clock.time, monotonic=clock.monotonic
        )
        assert manager.try_acquire("c", worker="dead") is not None
        assert manager.try_acquire("c", worker="w2") is None  # starts the watch
        clock.advance(11.0)
        assert manager.try_acquire("c", worker="w2") is not None


# ---------------------------------------------------------------------------
# Mid-split chaos: interrupt the split/publish/assemble pipeline anywhere
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def split_baseline(tmp_path_factory):
    """Fault-free parent chunk file bytes for the 3-item single-chunk manifest."""
    manifest = tiny_manifest(chunk_size=4)
    (chunk,) = manifest.chunks
    store = ChunkStore(tmp_path_factory.mktemp("split-baseline") / "store")
    store.write(chunk, chunk_records(chunk))
    return store.path_for(chunk).read_bytes()


def retry_faults(action, *, attempts: int, what: str, done=None):
    """Retry ``action`` until it returns without a fault.

    With ``done``, retry until that predicate holds instead — needed where a
    *lost* rename lets the action return cleanly without having published
    (resume and the fleet scan absorb this by re-checking ``is_complete``,
    so the convergence loop must judge success the same way).
    """
    result = None
    for _ in range(attempts):
        try:
            result = action()
        except OSError:
            # ChaosFault, or request_split's "could not publish or read"
            # follow-up to an injected link failure — both injected-only here.
            continue
        if done is None or done():
            return result
    pytest.fail(f"{what}: not converged in {attempts} attempts")


def split_chaos_round(root: Path, seed: int, baseline: bytes) -> None:
    manifest = tiny_manifest(chunk_size=4)
    (chunk,) = manifest.chunks
    store = ChunkStore(root / "store")
    max_faults = 6
    schedule = ChaosSchedule(seed, max_faults=max_faults)
    attempts = max_faults + 2
    with ChaosInjector(schedule, roots=[root]):
        parts = retry_faults(
            lambda: store.request_split(chunk, 2),
            attempts=attempts,
            what=f"seed {seed}: request_split",
        )
        # Every worker must derive the same agreed part count back.
        assert retry_faults(
            lambda: store.split_parts(chunk),
            attempts=attempts,
            what=f"seed {seed}: split_parts",
        ) == parts
        # "Publish until it is actually on disk": a lost rename makes
        # store.write return without raising AND without publishing — the
        # exact fault resume/fleet re-scans absorb by re-checking
        # is_complete, so the convergence loop must do the same.
        for sub in split_chunk(chunk, parts):
            records = chunk_records(sub)
            retry_faults(
                lambda s=sub, r=records: store.write(s, r),
                attempts=attempts,
                done=lambda s=sub: store.is_complete(s),
                what=f"seed {seed}: publish {sub.chunk_id}",
            )
        retry_faults(
            lambda: assemble_split(store, chunk, parts),
            attempts=attempts,
            done=lambda: store.is_complete(chunk),
            what=f"seed {seed}: assemble",
        )
    assert store.path_for(chunk).read_bytes() == baseline, (
        f"seed {seed}: assembled parent diverged from the unsplit bytes "
        f"(faults: {schedule.log})"
    )
    store.read(chunk)  # footer validates: the merge would accept this file


class TestSplitChaosFast:
    @pytest.mark.parametrize("seed", FAST_SPLIT_SEEDS)
    def test_interrupted_split_assembles_byte_identical(
        self, tmp_path, seed, split_baseline
    ):
        split_chaos_round(tmp_path, seed, split_baseline)


@pytest.mark.chaos
class TestSplitChaosFull:
    @pytest.mark.parametrize("seed", FULL_SPLIT_SEEDS)
    def test_interrupted_split_assembles_byte_identical(
        self, tmp_path, seed, split_baseline
    ):
        split_chaos_round(tmp_path, seed, split_baseline)


# ---------------------------------------------------------------------------
# Registry reload chaos: injected read faults degrade to last-good
# ---------------------------------------------------------------------------
class TestRegistryReloadChaos:
    def test_reload_degrades_to_last_good_under_read_faults(self, tmp_path):
        spec = tmp_path / "topologies.json"
        spec.write_text(json.dumps({"demo": "B(2,3)"}))
        registry = RouterRegistry()
        registry.load_spec_file(spec)
        assert registry.get("demo").spec == "B(2,3)"
        spec.write_text(json.dumps({"demo": "B(2,4)"}))
        with ChaosInjector(
            always("read-open", "estale", max_faults=1), roots=[tmp_path]
        ):
            assert registry.reload(force=True) == []  # degraded, not raised
            assert registry.failed_reloads == 1
            assert "chaos[estale]" in registry.last_error
            assert registry.get("demo").spec == "B(2,3)"  # last-good serves on
            # Budget spent — the periodic retry heals without intervention.
            assert registry.reload(force=True) == ["demo"]
        assert registry.get("demo").spec == "B(2,4)"
        assert registry.last_error is None

    def test_strict_reload_propagates_the_fault(self, tmp_path):
        spec = tmp_path / "topologies.json"
        spec.write_text(json.dumps({"demo": "B(2,3)"}))
        registry = RouterRegistry()
        registry.load_spec_file(spec)
        spec.write_text(json.dumps({"demo": "B(2,4)"}))
        with ChaosInjector(
            always("read-open", "eio", max_faults=1), roots=[tmp_path]
        ):
            with pytest.raises(ChaosFault):
                registry.reload(force=True, strict=True)
        assert registry.get("demo").spec == "B(2,3)"
