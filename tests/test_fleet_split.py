"""Tests for deterministic straggler splitting (sweep + fleet layers).

The contract under test, top to bottom:

* :func:`split_chunk` is a pure function — every worker derives the same
  sub-chunk names and the same contiguous slices, with no coordination;
* :meth:`ChunkStore.request_split` is a consensus point — racing proposers
  all come away with the *winner's* part count;
* :func:`assemble_split` is byte-identical to never having split — the
  merge layer cannot tell (and therefore does not care) whether a chunk ran
  whole or as sub-chunks;
* :func:`run_fleet` with ``split_after`` turns a live straggler's chunk into
  claimable sub-chunks, runs them, assembles the parent, and the final merge
  still matches the serial search exactly.
"""

import time

import pytest

from repro.fleet import LeaseManager, SweepFleetJob, run_fleet
from repro.fleet.status import fleet_status, format_status, store_status
from repro.otis.search import degree_diameter_search
from repro.otis.sweep import (
    ChunkManifest,
    ChunkStore,
    assemble_split,
    merge_sweep,
    run_chunk,
    run_sweep,
    split_chunk,
)

CODE_VERSION = "split-test-v1"


def small_manifest(chunk_size=4):
    return ChunkManifest.build(2, 6, range(60, 71), chunk_size=chunk_size)


def records_for(chunk, manifest):
    return run_chunk(
        (manifest.d, manifest.diameter, chunk.items, None, manifest.code_version)
    )


# ---------------------------------------------------------------------------
# split_chunk: deterministic naming and slicing
# ---------------------------------------------------------------------------
class TestSplitChunk:
    def chunk(self, items=6):
        manifest = ChunkManifest.build(
            2, 4, [16], chunk_size=4, code_version=CODE_VERSION
        )
        (chunk,) = manifest.chunks
        return chunk

    def test_names_and_slices_are_deterministic(self):
        chunk = self.chunk()
        first = split_chunk(chunk, 2)
        second = split_chunk(chunk, 2)
        assert first == second
        assert [sub.chunk_id for sub in first] == [
            f"{chunk.chunk_id}.s0",
            f"{chunk.chunk_id}.s1",
        ]

    def test_concatenation_reproduces_the_parent_items(self):
        chunk = self.chunk()
        for parts in (2, 3):
            subs = split_chunk(chunk, parts)
            flattened = tuple(item for sub in subs for item in sub.items)
            assert flattened == chunk.items
            # contiguous slices, larger slices first (divmod distribution)
            sizes = [len(sub.items) for sub in subs]
            assert max(sizes) - min(sizes) <= 1
            assert sizes == sorted(sizes, reverse=True)

    def test_parts_clamp_to_item_count(self):
        chunk = self.chunk()  # 3 items
        subs = split_chunk(chunk, 10)
        assert len(subs) == len(chunk.items)
        assert all(len(sub.items) == 1 for sub in subs)

    def test_rejects_degenerate_splits(self):
        chunk = self.chunk()
        with pytest.raises(ValueError, match="parts >= 2"):
            split_chunk(chunk, 1)
        single = type(chunk)(chunk_id="aa", index=0, items=((16, 1, 32),))
        with pytest.raises(ValueError, match="fewer than 2"):
            split_chunk(single, 2)


# ---------------------------------------------------------------------------
# request_split: one agreed winner, losers read it back
# ---------------------------------------------------------------------------
class TestRequestSplit:
    def test_racing_proposers_agree_on_the_winner(self, tmp_path):
        manifest = ChunkManifest.build(
            2, 4, [16], chunk_size=4, code_version=CODE_VERSION
        )
        (chunk,) = manifest.chunks
        store = ChunkStore(tmp_path)
        winner = store.request_split(chunk, 2)
        assert winner == 2
        # A later proposer with a different preference observes the winner.
        assert store.request_split(chunk, 3) == 2
        assert store.split_parts(chunk) == 2
        # Another store view of the same directory agrees too.
        assert ChunkStore(tmp_path).split_parts(chunk) == 2

    def test_unsplit_chunk_reports_none(self, tmp_path):
        manifest = ChunkManifest.build(
            2, 4, [16], chunk_size=4, code_version=CODE_VERSION
        )
        (chunk,) = manifest.chunks
        assert ChunkStore(tmp_path).split_parts(chunk) is None

    def test_foreign_marker_is_ignored(self, tmp_path):
        manifest = ChunkManifest.build(
            2, 4, [16], chunk_size=4, code_version=CODE_VERSION
        )
        (chunk,) = manifest.chunks
        store = ChunkStore(tmp_path)
        store.split_path(chunk).write_text('{"chunk": "someone-else", "parts": 2}')
        assert store.split_parts(chunk) is None


# ---------------------------------------------------------------------------
# assemble_split: byte-identical to the unsplit publication
# ---------------------------------------------------------------------------
class TestAssembleSplit:
    def test_assembled_parent_matches_unsplit_bytes(self, tmp_path):
        manifest = small_manifest()
        chunk = manifest.chunks[0]
        whole = ChunkStore(tmp_path / "whole")
        whole.write(chunk, records_for(chunk, manifest))
        split_store = ChunkStore(tmp_path / "split")
        for parts in (2, 3):
            for sub in split_chunk(chunk, parts):
                split_store.write(sub, records_for(sub, manifest))
            assert assemble_split(split_store, chunk, parts)
            assert (
                split_store.path_for(chunk).read_bytes()
                == whole.path_for(chunk).read_bytes()
            )
            split_store.path_for(chunk).unlink()

    def test_incomplete_subs_assemble_nothing(self, tmp_path):
        manifest = small_manifest()
        chunk = manifest.chunks[0]
        store = ChunkStore(tmp_path)
        subs = split_chunk(chunk, 2)
        store.write(subs[0], records_for(subs[0], manifest))
        assert not assemble_split(store, chunk, 2)
        assert not store.is_complete(chunk)

    def test_merge_sweep_folds_a_published_split(self, tmp_path):
        # An assembler that died right after the last sub-chunk published:
        # the merge folds the split itself instead of reporting it missing.
        manifest = small_manifest()
        store = ChunkStore(tmp_path)
        run_sweep(manifest, store)
        target = manifest.chunks[0]
        store.path_for(target).unlink()
        store.request_split(target, 2)
        for sub in split_chunk(target, 2):
            store.write(sub, records_for(sub, manifest))
        merged = merge_sweep(manifest, store)
        assert merged.rows == degree_diameter_search(2, 6, 60, 70).rows


# ---------------------------------------------------------------------------
# run_fleet end to end: a live straggler's chunk is split, run, assembled
# ---------------------------------------------------------------------------
class TestFleetStragglerSplit:
    def test_fleet_splits_a_live_straggler_and_merges_identically(
        self, tmp_path
    ):
        manifest = small_manifest()
        store = ChunkStore(tmp_path / "sweep")
        job = SweepFleetJob(manifest, store)
        straggler_chunk = manifest.chunks[0]
        # A live peer (heartbeat-fresh lease, far from TTL expiry) that has
        # held its chunk since "long ago" — the straggler.
        leases = LeaseManager(store.directory / "leases", ttl=600)
        held = leases.try_acquire(straggler_chunk.chunk_id, worker="straggler")
        assert held is not None
        time.sleep(0.1)  # let the hold age past split_after
        outcome = run_fleet(
            job,
            ttl=600,
            heartbeat=5,
            wait=False,
            split_after=0.05,
            split_parts=2,
        )
        assert outcome["splits"] == [straggler_chunk.chunk_id]
        assert outcome["complete"]
        sub_ids = {f"{straggler_chunk.chunk_id}.s{i}" for i in range(2)}
        assert sub_ids <= set(outcome["ran"])
        assert not outcome["lost"]
        # The straggler still "computes" (its lease is alive); the fleet got
        # the work done around it and the merge is exactly the serial rows.
        assert held.owned()
        assert job.merge().rows == degree_diameter_search(2, 6, 60, 70).rows

    def test_assembled_chunk_bytes_match_a_serial_sweep(self, tmp_path):
        manifest = small_manifest()
        serial = ChunkStore(tmp_path / "serial")
        run_sweep(manifest, serial)
        fleet_store = ChunkStore(tmp_path / "fleet")
        job = SweepFleetJob(manifest, fleet_store)
        leases = LeaseManager(fleet_store.directory / "leases", ttl=600)
        target = manifest.chunks[0]
        assert leases.try_acquire(target.chunk_id, worker="straggler")
        time.sleep(0.1)
        run_fleet(job, ttl=600, heartbeat=5, wait=False, split_after=0.05)
        for chunk in manifest.chunks:
            assert (
                fleet_store.path_for(chunk).read_bytes()
                == serial.path_for(chunk).read_bytes()
            )

    def test_live_fresh_lease_is_not_split(self, tmp_path):
        manifest = small_manifest()
        store = ChunkStore(tmp_path / "sweep")
        job = SweepFleetJob(manifest, store)
        leases = LeaseManager(store.directory / "leases", ttl=600)
        assert leases.try_acquire(manifest.chunks[0].chunk_id, worker="peer")
        # split_after far beyond the hold age: policy must not trigger.
        outcome = run_fleet(
            job, ttl=600, heartbeat=5, wait=False, split_after=3600
        )
        assert outcome["splits"] == []
        assert not outcome["complete"]
        assert store.split_parts(manifest.chunks[0]) is None

    @pytest.mark.parametrize("prefetch", [True, False])
    def test_merge_parity_with_and_without_prefetch(self, tmp_path, prefetch):
        manifest = small_manifest()
        job = SweepFleetJob(manifest, ChunkStore(tmp_path / "sweep"))
        outcome = run_fleet(job, ttl=10, heartbeat=2, prefetch=prefetch)
        assert outcome["complete"]
        assert not outcome["lost"]
        assert job.merge().rows == degree_diameter_search(2, 6, 60, 70).rows


# ---------------------------------------------------------------------------
# status surfaces splits
# ---------------------------------------------------------------------------
class TestSplitStatus:
    def test_status_counts_split_markers(self, tmp_path):
        manifest = small_manifest()
        store = ChunkStore(tmp_path / "sweep")
        job = SweepFleetJob(manifest, store)
        run_fleet(job, ttl=10, heartbeat=2, max_chunks=1)
        store.request_split(manifest.chunks[1], 2)
        status = fleet_status(job, ttl=10)
        assert status["splits"] == 1
        assert "1 split into sub-chunks" in format_status(status)
        from_store = store_status(store.directory, ttl=10)
        assert from_store["splits"] == 1

    def test_sub_chunk_files_do_not_skew_complete_counts(self, tmp_path):
        manifest = small_manifest()
        store = ChunkStore(tmp_path / "sweep")
        job = SweepFleetJob(manifest, store)
        target = manifest.chunks[0]
        store.request_split(target, 2)
        sub = split_chunk(target, 2)[0]
        store.write(sub, records_for(sub, manifest))
        run_fleet(job, ttl=10, heartbeat=2, max_chunks=0, wait=False)
        status = fleet_status(job, ttl=10)
        # one published sub-chunk is progress-in-flight, not a complete chunk
        assert status["complete"] == 0
        assert status["pending"] == len(manifest.chunks)
