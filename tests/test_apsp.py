"""Parity tests for the batched bit-parallel eccentricity/APSP engine.

The engine (:mod:`repro.graphs.apsp`) shadows three reference
implementations — per-source queue BFS, the python distance matrix and the
scipy compiled path — so every test here pits them against each other on the
adversarial digraph shapes the search actually meets: multigraphs with
parallel arcs, disconnected digraphs, loops, and the OTIS digraphs
``H(p, q, d)`` themselves.
"""

import numpy as np
import pytest

from repro.graphs.apsp import (
    batched_eccentricities,
    bit_distance_matrix,
    padded_predecessor_matrix,
    padded_successor_matrix,
    pairwise_distance_sum,
    subset_distance_rows,
)
from repro.graphs.digraph import Digraph, RegularDigraph
from repro.graphs.generators import circuit, de_bruijn, kautz
from repro.graphs.properties import distance_matrix, eccentricities
from repro.graphs.traversal import (
    bfs_distances,
    reverse_bfs_distances_regular,
)
from repro.otis.h_digraph import h_digraph


def reference_eccentricities(graph) -> np.ndarray:
    dist = distance_matrix(graph, method="python")
    n = graph.num_vertices
    ecc = np.empty(n, dtype=np.int64)
    for u in range(n):
        ecc[u] = -1 if (dist[u] < 0).any() else dist[u].max()
    return ecc


def random_digraph(rng, n, m, parallel=False):
    arcs = []
    for _ in range(m):
        u, v = rng.integers(n, size=2)
        arcs.append((int(u), int(v)))
        if parallel and rng.random() < 0.3:
            arcs.append((int(u), int(v)))  # duplicate: genuine parallel arc
    return Digraph(n, arcs=arcs)


class TestDistanceParity:
    def test_named_families(self):
        for graph in (de_bruijn(2, 4), de_bruijn(3, 3), kautz(2, 4), circuit(9)):
            assert np.array_equal(
                bit_distance_matrix(graph), distance_matrix(graph, method="python")
            )
            assert np.array_equal(
                bit_distance_matrix(graph), distance_matrix(graph, method="scipy")
            )

    def test_random_digraphs_including_disconnected(self):
        rng = np.random.default_rng(42)
        for trial in range(20):
            n = int(rng.integers(1, 40))
            m = int(rng.integers(0, 3 * n))
            graph = random_digraph(rng, n, m, parallel=(trial % 2 == 0))
            ref = distance_matrix(graph, method="python")
            assert np.array_equal(bit_distance_matrix(graph), ref)
            # Per-source queue BFS as an extra independent reference.
            source = int(rng.integers(n))
            assert np.array_equal(ref[source], bfs_distances(graph, source))

    def test_every_small_h_with_parallel_arcs(self):
        # All H(p, q, d) on <= 40 vertices that actually have parallel arcs
        # (184 instances exist over the paper's parameter space; these are
        # the small ones).
        found = 0
        for d in (2, 3):
            for p in range(1, 7):
                for q in range(p, 13):
                    if (p * q) % d:
                        continue
                    graph = h_digraph(p, q, d)
                    if graph.num_vertices > 40:
                        continue
                    multiset = graph.arc_multiset()
                    if max(multiset.values()) < 2:
                        continue
                    found += 1
                    assert np.array_equal(
                        bit_distance_matrix(graph),
                        distance_matrix(graph, method="python"),
                    )
                    ecc, aborted = batched_eccentricities(graph)
                    assert not aborted
                    assert np.array_equal(ecc, reference_eccentricities(graph))
        assert found >= 5  # the sweep really exercised multigraph instances

    def test_empty_and_trivial(self):
        assert bit_distance_matrix(Digraph(0)).shape == (0, 0)
        assert np.array_equal(bit_distance_matrix(Digraph(1)), [[0]])
        loop = Digraph(1, arcs=[(0, 0)])
        assert np.array_equal(bit_distance_matrix(loop), [[0]])

    def test_word_boundary_sizes(self):
        # Exercise n below/at/above the 64-bit word boundary.
        for n in (63, 64, 65, 128, 130):
            graph = circuit(n)
            assert np.array_equal(
                bit_distance_matrix(graph), distance_matrix(graph, method="python")
            )


class TestEccentricities:
    def test_matches_reference_on_random_digraphs(self):
        rng = np.random.default_rng(7)
        for _ in range(15):
            n = int(rng.integers(1, 50))
            graph = random_digraph(rng, n, int(rng.integers(0, 4 * n)), parallel=True)
            ecc, aborted = batched_eccentricities(graph)
            assert not aborted
            assert np.array_equal(ecc, reference_eccentricities(graph))
            # properties.eccentricities defaults onto the engine.
            assert np.array_equal(eccentricities(graph), ecc)
            assert np.array_equal(eccentricities(graph, method="python"), ecc)

    def test_early_abort_fires(self):
        graph = de_bruijn(2, 6)  # diameter 6
        ecc, aborted = batched_eccentricities(graph, upper_bound=3)
        assert aborted
        # With a loose bound it runs to completion.
        ecc, aborted = batched_eccentricities(graph, upper_bound=6)
        assert not aborted
        assert ecc.max() == 6

    def test_disconnected_converges_before_loose_bound(self):
        # The sweep converges (no bit changes) before the bound is reached,
        # so the answer is definitive: no abort, -1 everywhere.
        graph = Digraph(3, arcs=[(0, 1), (1, 0)])
        ecc, aborted = batched_eccentricities(graph, upper_bound=5)
        assert not aborted
        assert list(ecc) == [-1, -1, -1]
        ecc, aborted = batched_eccentricities(graph)
        assert not aborted
        assert list(ecc) == [-1, -1, -1]

    def test_abort_on_slowly_converging_disconnected(self):
        # A directed path keeps changing past the bound, so the abort fires
        # before convergence can prove disconnection.
        graph = Digraph(6, arcs=[(i, i + 1) for i in range(5)])
        ecc, aborted = batched_eccentricities(graph, upper_bound=2)
        assert aborted

    def test_accepts_raw_successor_matrix(self):
        graph = kautz(2, 3)
        ecc_graph, _ = batched_eccentricities(graph)
        ecc_matrix, _ = batched_eccentricities(graph.successors)
        assert np.array_equal(ecc_graph, ecc_matrix)


class TestDistanceSum:
    def test_matches_matrix_sum(self):
        for graph in (de_bruijn(2, 4), kautz(2, 3), circuit(8)):
            total, complete = pairwise_distance_sum(graph)
            assert complete
            dist = distance_matrix(graph, method="python")
            assert total == int(dist.sum())

    def test_incomplete_on_disconnected(self):
        total, complete = pairwise_distance_sum(Digraph(3, arcs=[(0, 1)]))
        assert not complete
        assert total == 1  # only d(0, 1) is finite

    def test_partial_sum_is_exactly_the_finite_distances(self):
        rng = np.random.default_rng(3)
        for _ in range(12):
            n = int(rng.integers(2, 30))
            graph = random_digraph(rng, n, int(rng.integers(0, 2 * n)))
            total, complete = pairwise_distance_sum(graph)
            dist = distance_matrix(graph, method="python")
            assert total == int(dist[dist > 0].sum())
            assert complete == bool((dist >= 0).all())


class TestPaddedSuccessorMatrix:
    def test_regular_passthrough(self):
        graph = de_bruijn(2, 3)
        assert padded_successor_matrix(graph) is graph.successors

    def test_padding_is_inert(self):
        # Irregular out-degrees: padding with the vertex itself must not
        # change any distance.
        graph = Digraph(4, arcs=[(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 0)])
        matrix = padded_successor_matrix(graph)
        assert matrix.shape == (4, 3)
        assert np.array_equal(
            bit_distance_matrix(graph), distance_matrix(graph, method="python")
        )

    def test_no_arcs(self):
        assert padded_successor_matrix(Digraph(3)).shape == (3, 0)


class TestReverseBfs:
    def test_matches_distance_matrix_column(self):
        rng = np.random.default_rng(11)
        for graph in (de_bruijn(2, 4), kautz(2, 3), h_digraph(4, 8, 2)):
            target = int(rng.integers(graph.num_vertices))
            rdist = reverse_bfs_distances_regular(graph, target)
            expected = distance_matrix(graph, method="python")[:, target]
            assert np.array_equal(rdist, expected)

    def test_unreachable_marked(self):
        graph = RegularDigraph([[1], [1]])  # vertex 1 absorbs; 0 unreachable
        rdist = reverse_bfs_distances_regular(graph, 0)
        assert list(rdist) == [0, -1]

    def test_bad_target(self):
        with pytest.raises(ValueError):
            reverse_bfs_distances_regular(de_bruijn(2, 3), 99)


class TestSubsetSources:
    """``sources=`` subset sweeps agree with the full engine everywhere."""

    def test_subset_matches_full_sweep(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            n = int(rng.integers(2, 60))
            graph = random_digraph(rng, n, int(rng.integers(0, 4 * n)), parallel=True)
            full, _ = batched_eccentricities(graph)
            sources = rng.permutation(n)[: int(rng.integers(1, n + 1))]
            subset, aborted = batched_eccentricities(graph, sources=sources)
            assert not aborted
            assert np.array_equal(subset, full[sources])

    def test_more_than_64_sources(self):
        # more sources than one machine word: the multi-word state path
        graph = de_bruijn(2, 7)  # n = 128
        sources = np.arange(100)
        full, _ = batched_eccentricities(graph)
        subset, _ = batched_eccentricities(graph, sources=sources)
        assert np.array_equal(subset, full[:100])

    def test_duplicate_and_unordered_sources(self):
        graph = kautz(2, 3)
        full, _ = batched_eccentricities(graph)
        sources = np.array([5, 0, 5, 2])
        subset, _ = batched_eccentricities(graph, sources=sources)
        assert np.array_equal(subset, full[sources])

    def test_upper_bound_abort_parity_with_full_sweep(self):
        graphs = [
            de_bruijn(2, 5),
            Digraph(6, arcs=[(i, i + 1) for i in range(5)]),
            Digraph(3, arcs=[(0, 1), (1, 0)]),
        ]
        for graph in graphs:
            n = graph.num_vertices
            for bound in range(0, 7):
                full, full_abort = batched_eccentricities(graph, upper_bound=bound)
                subset, subset_abort = batched_eccentricities(
                    graph, upper_bound=bound, sources=np.arange(n)
                )
                assert subset_abort == full_abort
                assert np.array_equal(subset, full)

    def test_sampled_screen_on_unreachable_source(self):
        graph = Digraph(4, arcs=[(0, 1), (1, 0), (1, 2)])
        subset, aborted = batched_eccentricities(graph, sources=np.array([2, 0]))
        assert not aborted
        assert list(subset) == [-1, -1]  # neither 2 nor 0 reaches vertex 3

    def test_rejects_bad_sources(self):
        graph = de_bruijn(2, 3)
        with pytest.raises(ValueError):
            batched_eccentricities(graph, sources=np.array([99]))
        with pytest.raises(ValueError):
            batched_eccentricities(graph, sources=np.array([[0, 1]]))
        with pytest.raises(ValueError):
            batched_eccentricities(graph.successors, sources=np.array([0]))


class TestSubsetDistanceRows:
    def test_rows_match_distance_matrix(self):
        rng = np.random.default_rng(13)
        for _ in range(10):
            n = int(rng.integers(2, 50))
            graph = random_digraph(rng, n, int(rng.integers(0, 4 * n)), parallel=True)
            matrix = bit_distance_matrix(graph)
            sources = rng.permutation(n)[: int(rng.integers(1, n + 1))]
            rows = subset_distance_rows(graph, sources)
            assert np.array_equal(rows, matrix[sources])

    def test_precomputed_predecessors_path(self):
        graph = h_digraph(4, 8, 2)
        predecessors = padded_predecessor_matrix(graph)
        sources = np.array([0, 7, 3])
        with_pred = subset_distance_rows(graph, sources, predecessors=predecessors)
        without = subset_distance_rows(graph, sources)
        assert np.array_equal(with_pred, without)

    def test_predecessor_matrix_covers_multiplicity(self):
        graph = h_digraph(1, 4, 2)  # parallel arcs
        predecessors = padded_predecessor_matrix(graph)
        in_degrees = graph.in_degrees()
        assert predecessors.shape[1] == in_degrees.max()

    def test_raw_matrix_needs_explicit_predecessors(self):
        graph = de_bruijn(2, 3)
        with pytest.raises(ValueError, match="predecessors"):
            subset_distance_rows(graph.successors, np.array([0]))

    def test_empty_sources(self):
        rows = subset_distance_rows(de_bruijn(2, 3), np.zeros(0, dtype=np.int64))
        assert rows.shape == (0, 8)
