"""Serve robustness suite: backpressure, deadlines, drain, reload degrade.

What PR 9 added to the serve layer, pinned down end to end:

* **admission control** — at ``max_inflight`` concurrent queries the server
  sheds with ``429 + Retry-After`` instead of queueing without bound, and
  the control plane (``/healthz``, ``/stats``) stays green throughout;
* **deadlines** — a query slower than ``request_timeout_s`` is cancelled
  and answered ``503``, with the cancellation counted in ``/stats``;
* **drain** — a draining server answers queries and health checks ``503``
  (so load balancers pull it), finishes what it admitted, then stops;
* **reload degrade** — a broken spec file never tears down the last good
  registry snapshot; the failure is visible in ``/stats`` and heals itself;
* **client backoff** — the bench client's jittered exponential backoff
  honours ``Retry-After``, converges under shedding, and de-correlates a
  herd of simultaneously shed clients (pure injected-clock math, no sleeps).
"""

import http.client
import json
import threading
import time
from collections import Counter

import pytest

from repro.serve import ExponentialBackoff, RouterRegistry, ServerThread, run_bench
from repro.serve.bench import http_request
from repro.serve.metrics import MAX_ENDPOINTS, MAX_RECENT, ServeMetrics


def make_registry() -> RouterRegistry:
    registry = RouterRegistry()
    registry.add("demo", "B(2,3)")
    return registry


def raw_request(host, port, method, path, body=None, timeout=30):
    """One round trip returning ``(status, headers dict, parsed body)``."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            json.loads(response.read()),
        )
    finally:
        connection.close()


QUERY = {"op": "next-hop", "topology": "demo", "pairs": [[0, 1], [1, 2]]}


# ---------------------------------------------------------------------------
# Admission control: 429 + Retry-After, healthz stays green
# ---------------------------------------------------------------------------
class TestShedding:
    def test_overload_sheds_with_retry_after_and_healthz_stays_green(self):
        # A long batch window pins every query for ~0.3 s, so 8 concurrent
        # clients are a >4x overload of max_inflight=2.
        with ServerThread(
            make_registry(),
            batch_window_s=0.3,
            max_inflight=2,
            retry_after_s=0.25,
        ) as server:
            results = [None] * 8
            barrier = threading.Barrier(8)

            def one(index):
                barrier.wait()
                results[index] = raw_request(
                    server.host, server.port, "POST", "/v1/query", QUERY
                )

            threads = [
                threading.Thread(target=one, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            # While the first wave is pinned in its batch window, the
            # control plane must still answer instantly and healthily.
            health = http_request(server.host, server.port, "GET", "/healthz")
            assert health["ok"] is True
            for thread in threads:
                thread.join(timeout=30)
            statuses = Counter(status for status, _, _ in results)
            assert statuses[200] >= 1  # accepted work completed
            assert statuses[429] >= 1  # overload genuinely shed
            assert set(statuses) <= {200, 429}
            for status, headers, body in results:
                if status == 429:
                    assert headers["retry-after"] == "0.25"
                    assert body["retry_after_s"] == 0.25
                    assert body["ok"] is False
                else:
                    assert body["ok"] is True
            stats = http_request(server.host, server.port, "GET", "/stats")
            assert stats["backpressure"]["shed"] == statuses[429]
            assert stats["max_inflight"] == 2
            assert stats["draining"] is False

    def test_accepted_latency_stays_bounded_under_sustained_overload(self):
        # The point of shedding: what IS accepted completes in roughly one
        # batch window, no matter how much excess demand there is — rejected
        # requests never form a queue behind the admitted ones.
        window = 0.05
        with ServerThread(
            make_registry(),
            batch_window_s=window,
            max_inflight=1,
            retry_after_s=0.01,
        ) as server:
            results = []  # (status, seconds) across all hammering threads
            lock = threading.Lock()

            def hammer():
                for _ in range(10):
                    start = time.perf_counter()
                    status, _, _ = raw_request(
                        server.host, server.port, "POST", "/v1/query", QUERY
                    )
                    with lock:
                        results.append((status, time.perf_counter() - start))

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            statuses = Counter(status for status, _ in results)
            assert statuses[429] >= 1  # the overload was real
            accepted = sorted(s for status, s in results if status == 200)
            assert accepted
            p99 = accepted[int(0.99 * (len(accepted) - 1))]
            assert p99 < window * 10  # bounded — not queue-length dependent


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_slow_query_is_cancelled_at_the_deadline(self):
        # The 0.5 s batch window guarantees the query overruns a 50 ms
        # deadline; the server must answer 503 promptly, not after 0.5 s.
        with ServerThread(
            make_registry(), batch_window_s=0.5, request_timeout_s=0.05
        ) as server:
            start = time.perf_counter()
            status, headers, body = raw_request(
                server.host, server.port, "POST", "/v1/query", QUERY
            )
            elapsed = time.perf_counter() - start
            assert status == 503
            assert "deadline exceeded" in body["error"]
            assert "retry-after" in headers
            assert elapsed < 0.4  # answered at the deadline, not the window
            stats = http_request(server.host, server.port, "GET", "/stats")
            assert stats["backpressure"]["deadline_exceeded"] == 1


# ---------------------------------------------------------------------------
# Drain
# ---------------------------------------------------------------------------
class TestDrain:
    def test_draining_server_refuses_queries_and_reports_unhealthy(self):
        with ServerThread(make_registry()) as server:
            assert raw_request(
                server.host, server.port, "GET", "/healthz"
            )[0] == 200
            server.server._draining = True
            status, _, body = raw_request(
                server.host, server.port, "GET", "/healthz"
            )
            assert status == 503
            assert body["draining"] is True
            status, headers, body = raw_request(
                server.host, server.port, "POST", "/v1/query", QUERY
            )
            assert status == 503
            assert "draining" in body["error"]
            assert "retry-after" in headers
            # the control plane still answers while draining
            assert raw_request(server.host, server.port, "GET", "/stats")[
                2
            ]["draining"] is True
            server.server._draining = False

    def test_drain_stops_the_server(self):
        import asyncio

        server_thread = ServerThread(make_registry()).start()
        try:
            host, port = server_thread.host, server_thread.port
            assert http_request(host, port, "GET", "/healthz")["ok"]
            future = asyncio.run_coroutine_threadsafe(
                server_thread.server.drain(grace_s=1.0), server_thread._loop
            )
            future.result(timeout=10)
            with pytest.raises(OSError):
                raw_request(host, port, "GET", "/healthz", timeout=2)
        finally:
            server_thread.stop()


# ---------------------------------------------------------------------------
# Reload degrade: last-good snapshot survives a broken spec file
# ---------------------------------------------------------------------------
class TestReloadDegrade:
    def test_broken_spec_file_degrades_and_heals(self, tmp_path):
        spec = tmp_path / "topologies.json"
        spec.write_text(json.dumps({"demo": "B(2,3)"}))
        registry = RouterRegistry()
        registry.load_spec_file(spec)
        spec.write_text('{"demo": "B(2,')  # torn mid-write
        assert registry.reload(force=True) == []
        assert registry.failed_reloads == 1
        assert "ValueError" in registry.last_error or "JSON" in registry.last_error
        assert registry.get("demo").spec == "B(2,3)"  # last-good serves on
        spec.write_text(json.dumps({"demo": "B(2,4)"}))
        assert registry.reload(force=True) == ["demo"]
        assert registry.get("demo").spec == "B(2,4)"
        assert registry.last_error is None

    def test_bad_spec_never_half_commits(self, tmp_path):
        # One good entry + one broken entry in the same file: the reload
        # must commit NEITHER (transactional), not apply the good half.
        spec = tmp_path / "topologies.json"
        spec.write_text(json.dumps({"a": "B(2,3)", "b": "B(2,4)"}))
        registry = RouterRegistry()
        registry.load_spec_file(spec)
        versions = {name: registry.get(name).version for name in ("a", "b")}
        spec.write_text(json.dumps({"a": "B(2,5)", "b": "X(9,9)"}))
        assert registry.reload(force=True) == []
        assert registry.get("a").spec == "B(2,3)"
        assert registry.get("a").version == versions["a"]
        assert registry.get("b").version == versions["b"]

    def test_stats_and_reload_endpoint_surface_failures(self, tmp_path):
        spec = tmp_path / "topologies.json"
        spec.write_text(json.dumps({"demo": "B(2,3)"}))
        registry = RouterRegistry()
        registry.load_spec_file(spec)
        with ServerThread(registry, reload_interval_s=0) as server:
            spec.write_text("not json at all")
            status, _, body = raw_request(
                server.host, server.port, "POST", "/reload"
            )
            assert status == 500
            assert "reload failed" in body["error"]
            # the strict endpoint failed loudly; the degrade path records it
            registry.reload(force=True)
            stats = http_request(server.host, server.port, "GET", "/stats")
            assert stats["reload"]["failed_reloads"] >= 1
            assert stats["reload"]["last_error"]
            # and the data plane never blinked
            reply = http_request(
                server.host, server.port, "POST", "/v1/query", QUERY
            )
            assert reply["ok"] is True


# ---------------------------------------------------------------------------
# Bench client: Retry-After + jittered backoff convergence
# ---------------------------------------------------------------------------
class TestBenchRetry:
    def test_bench_converges_against_a_shedding_server(self):
        with ServerThread(
            make_registry(),
            batch_window_s=0.01,
            max_inflight=1,
            retry_after_s=0.01,
        ) as server:
            result = run_bench(
                server.host,
                server.port,
                topology="demo",
                messages=1024,
                batch_pairs=64,
                connections=4,
                seed=3,
            )
        assert result.queries == 1024
        assert result.requests == 1024 // 64  # every batch finally accepted
        assert result.retries > 0  # shedding actually happened...
        assert result.to_json()["retries"] == result.retries

    def test_seeded_backoff_replays(self):
        first = ExponentialBackoff(seed=42)
        second = ExponentialBackoff(seed=42)
        assert [first.delay(a) for a in range(6)] == [
            second.delay(a) for a in range(6)
        ]

    def test_delay_bounds_and_cap(self):
        backoff = ExponentialBackoff(base_s=0.1, cap_s=1.0, seed=0)
        for attempt in range(12):
            ceiling = min(1.0, 0.1 * 2.0**attempt)
            delay = backoff.delay(attempt)
            assert ceiling / 2.0 <= delay <= ceiling

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base_s=0.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(base_s=1.0, cap_s=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(multiplier=0.9)

    def test_herd_decorrelates_on_an_injected_clock(self):
        # 200 clients all shed at t=0 retry under seeded equal-jitter
        # backoff.  Pure arithmetic — no sleeping, no server: compute each
        # client's cumulative retry instants and show the herd spreads out
        # instead of re-arriving in lock-step.
        clients = [
            ExponentialBackoff(base_s=0.05, cap_s=5.0, seed=seed)
            for seed in range(200)
        ]
        elapsed = [0.0] * len(clients)
        arrivals = []  # arrivals[k] = sorted retry instants of attempt k
        for attempt in range(5):
            for index, client in enumerate(clients):
                elapsed[index] += client.delay(attempt)
            arrivals.append(sorted(elapsed))

        def peak_density(instants, window=0.05):
            buckets = Counter(int(t / window) for t in instants)
            return max(buckets.values())

        # Attempt 0 is one solid herd (every delay lands in [base/2, base],
        # inside a single 50 ms window); by attempt 3 no window holds more
        # than ~a quarter of the clients and the decay continues — the
        # "same thundering herd re-arrives" failure mode is gone.
        assert peak_density(arrivals[0]) == len(clients)
        assert peak_density(arrivals[3]) < len(clients) * 0.35
        assert peak_density(arrivals[4]) < peak_density(arrivals[3])
        span = lambda xs: xs[-1] - xs[0]  # noqa: E731
        assert span(arrivals[3]) > 4 * span(arrivals[0])


# ---------------------------------------------------------------------------
# Bounded metrics
# ---------------------------------------------------------------------------
class TestBoundedMetrics:
    def test_endpoint_labels_cap_at_max_with_overflow_bucket(self):
        metrics = ServeMetrics()
        for index in range(MAX_ENDPOINTS + 50):
            metrics.record(f"op-{index:04d}", queries=1, seconds=0.001)
        endpoints = metrics.snapshot()["endpoints"]
        assert len(endpoints) == MAX_ENDPOINTS + 1  # the cap + "__other__"
        assert endpoints["__other__"]["requests"] == 50
        # totals are conserved — overflow aggregates, never drops
        assert sum(e["requests"] for e in endpoints.values()) == (
            MAX_ENDPOINTS + 50
        )

    def test_qps_window_deque_is_bounded_on_a_frozen_clock(self):
        # A frozen clock means no sample ever ages out of the window — the
        # deque maxlen is the only thing standing between a hot server and
        # unbounded growth.
        metrics = ServeMetrics(clock=lambda: 100.0)
        for _ in range(MAX_RECENT + 500):
            metrics.record("op", queries=1, seconds=0.001)
        assert len(metrics._recent) == MAX_RECENT
        assert metrics.queries_per_second() > 0
