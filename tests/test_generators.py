"""Unit tests for the digraph family generators."""

import numpy as np
import pytest

from repro.graphs.generators import (
    bidirectional_torus,
    butterfly,
    circuit,
    complete_digraph_with_loops,
    de_bruijn,
    de_bruijn_words,
    gemnet,
    hypercube_digraph,
    imase_itoh,
    kautz,
    kautz_words,
    reddy_raghavan_kuhl,
    ring,
    shuffle_exchange,
    shufflenet,
)
from repro.graphs.moore import de_bruijn_order, kautz_order
from repro.graphs.properties import diameter
from repro.graphs.traversal import is_strongly_connected
from repro.words import word_to_int


class TestDeBruijn:
    def test_basic_counts(self):
        B = de_bruijn(2, 3)
        assert B.num_vertices == 8
        assert B.degree == 2
        assert B.num_arcs == 16
        assert B.num_loops() == 2  # 000 and 111

    def test_definition_2_2_word_adjacency(self):
        # x_{D-1}...x_0 -> x_{D-2}...x_0 lambda
        B = de_bruijn(2, 3)
        word = (1, 0, 1)
        u = word_to_int(word, 2)
        expected = {word_to_int((0, 1, 0), 2), word_to_int((0, 1, 1), 2)}
        assert set(B.out_neighbors(u)) == expected

    def test_figure_1_structure(self):
        # Figure 1: B(2,3) on words 000..111; spot-check a few arcs.
        B = de_bruijn(2, 3)
        assert B.has_arc(word_to_int((0, 0, 1), 2), word_to_int((0, 1, 0), 2))
        assert B.has_arc(word_to_int((1, 1, 0), 2), word_to_int((1, 0, 1), 2))
        assert not B.has_arc(word_to_int((1, 1, 1), 2), word_to_int((0, 0, 0), 2))

    def test_regular_and_connected(self):
        for d, D in ((2, 4), (3, 3), (4, 2)):
            B = de_bruijn(d, D)
            assert B.is_regular()
            assert is_strongly_connected(B)
            assert diameter(B) == D

    def test_labels_match_words(self):
        B = de_bruijn(2, 3)
        assert B.labels == de_bruijn_words(2, 3)
        assert B.label_of(5) == (1, 0, 1)

    def test_order_helper(self):
        assert de_bruijn(3, 2).num_vertices == de_bruijn_order(3, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            de_bruijn(0, 3)
        with pytest.raises(ValueError):
            de_bruijn(2, 0)


class TestRRKAndImaseItoh:
    def test_rrk_congruence(self):
        # RRK(d, n): u -> d*u + lambda mod n
        G = reddy_raghavan_kuhl(3, 10)
        assert set(G.out_neighbors(4)) == {(3 * 4 + k) % 10 for k in range(3)}

    def test_rrk_equals_debruijn_at_powers(self):
        # Remark 2.6: with the standard integer labelling they coincide.
        assert reddy_raghavan_kuhl(2, 8).same_arcs(de_bruijn(2, 3))
        assert reddy_raghavan_kuhl(3, 27).same_arcs(de_bruijn(3, 3))

    def test_figure_2_rrk_2_8(self):
        G = reddy_raghavan_kuhl(2, 8)
        assert set(G.out_neighbors(3)) == {6, 7}
        assert set(G.out_neighbors(7)) == {6, 7}

    def test_imase_itoh_congruence(self):
        # II(d, n): u -> -d*u - lambda mod n, lambda in 1..d
        G = imase_itoh(2, 8)
        assert set(G.out_neighbors(0)) == {6, 7}
        assert set(G.out_neighbors(3)) == {(-6 - 1) % 8, (-6 - 2) % 8}

    def test_figure_3_ii_2_8_regular_connected(self):
        G = imase_itoh(2, 8)
        assert G.is_regular()
        assert is_strongly_connected(G)
        assert diameter(G) == 3

    def test_imase_itoh_kautz_order_diameter(self):
        # II(d, d^(D-1)(d+1)) is isomorphic to K(d, D) hence diameter D.
        assert diameter(imase_itoh(2, 12)) == 3
        assert diameter(imase_itoh(2, 24)) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            imase_itoh(2, 0)
        with pytest.raises(ValueError):
            reddy_raghavan_kuhl(2, -1)


class TestKautz:
    def test_counts(self):
        K = kautz(2, 3)
        assert K.num_vertices == kautz_order(2, 3) == 12
        assert K.degree == 2
        assert K.num_loops() == 0

    def test_words_are_valid(self):
        for word in kautz_words(2, 4):
            assert all(a != b for a, b in zip(word, word[1:]))
        assert len(kautz_words(3, 3)) == kautz_order(3, 3)

    def test_adjacency_respects_kautz_rule(self):
        K = kautz(2, 3)
        for u in range(K.num_vertices):
            word = K.labels[u]
            for v in K.out_neighbors(u):
                target = K.labels[v]
                assert target[:-1] == word[1:]
                assert target[-1] != word[-1]

    def test_diameter_and_connectivity(self):
        for d, D in ((2, 3), (2, 4), (3, 2)):
            K = kautz(d, D)
            assert is_strongly_connected(K)
            assert diameter(K) == D


class TestSmallFamilies:
    def test_circuit(self):
        C = circuit(5)
        assert C.num_vertices == 5
        assert all(C.out_neighbors(i) == [(i + 1) % 5] for i in range(5))
        assert circuit(1).num_loops() == 1
        with pytest.raises(ValueError):
            circuit(0)

    def test_complete_with_loops(self):
        K = complete_digraph_with_loops(4)
        assert K.degree == 4
        assert K.num_loops() == 4
        assert diameter(K) == 1

    def test_ring(self):
        R = ring(6)
        assert R.degree == 2
        assert diameter(R) == 3
        assert diameter(ring(6, bidirectional=False)) == 5


class TestMultistageNetworks:
    def test_shuffle_exchange(self):
        G = shuffle_exchange(3)
        assert G.num_vertices == 8
        assert all(G.out_degree(u) == 2 for u in range(8))
        # exchange arc flips the last bit
        assert G.has_arc(0, 1) and G.has_arc(5, 4)

    def test_butterfly_structure(self):
        G = butterfly(2, 2)
        # 3 levels of 4 words
        assert G.num_vertices == 12
        # only levels 0..D-1 have outgoing arcs, each of degree d
        assert all(G.out_degree(u) == 2 for u in range(8))
        assert all(G.out_degree(u) == 0 for u in range(8, 12))

    def test_shufflenet(self):
        G = shufflenet(2, 2)
        assert G.num_vertices == 2 * 4
        assert all(G.out_degree(u) == 2 for u in range(G.num_vertices))
        assert is_strongly_connected(G)

    def test_gemnet_any_size(self):
        # GEMNET exists for sizes that are not powers of d.
        G = gemnet(2, 3, 5)
        assert G.num_vertices == 15
        assert is_strongly_connected(G)

    def test_hypercube(self):
        Q = hypercube_digraph(3)
        assert Q.num_vertices == 8
        assert Q.degree == 3
        assert diameter(Q) == 3

    def test_torus(self):
        T = bidirectional_torus(3, 4)
        assert T.num_vertices == 12
        assert T.degree == 4
        assert diameter(T) == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            shuffle_exchange(0)
        with pytest.raises(ValueError):
            gemnet(2, 0, 5)
        with pytest.raises(ValueError):
            hypercube_digraph(0)
        with pytest.raises(ValueError):
            bidirectional_torus(0, 3)
