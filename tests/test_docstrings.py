"""Run the doctest examples embedded in the library's docstrings.

Several public functions carry small usage examples (word codecs, the
de Bruijn generator, the OTIS wiring rule, the Proposition 3.2/4.1 maps, the
package-level quickstart).  Executing them keeps the documentation honest.
"""

import doctest
import importlib

import pytest

# importlib is used instead of attribute access because some package
# __init__ files re-export a function under the same name as its module
# (e.g. ``repro.otis.h_digraph``), which would shadow the module object.
MODULE_NAMES = [
    "repro",
    "repro.words",
    "repro.permutations",
    "repro.graphs.generators",
    "repro.otis.architecture",
    "repro.otis.h_digraph",
    "repro.otis.search",
    "repro.otis.sweep",
    "repro.routing.paths",
    "repro.core.checks",
    "repro.core.isomorphisms",
]
MODULES = [importlib.import_module(name) for name in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_doctests_actually_found():
    """Guard against silently testing nothing (e.g. after a refactor)."""
    attempted = sum(doctest.testmod(m, verbose=False).attempted for m in MODULES)
    assert attempted >= 10
