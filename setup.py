"""Thin setup.py shim.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works with the legacy editable-install path on
environments that lack the ``wheel`` package (such as the offline test
environment this reproduction targets).
"""

from setuptools import setup

setup()
