"""Shared fixtures and helpers for the benchmark harness.

Every benchmark corresponds to a table or figure of the paper (see the
experiment index in DESIGN.md and the measured results in EXPERIMENTS.md).
The heavy reproductions (Table 1) use ``benchmark.pedantic`` with a single
round so that ``pytest benchmarks/ --benchmark-only`` stays in the
minutes range; the micro-benchmarks (O(D) checks, layout construction) use
the default calibrated timing.

Markers (``table1``, ``sim``) are registered once, in the repository-root
``conftest.py``.

A session-scoped autouse fixture warms the active kernel backend
(:mod:`repro.kernels`) before the first benchmark runs, so one-time
compilation / JIT warm-up cost can never land inside a timed region and
masquerade as a wall-time regression in the ``BENCH_*.json`` keys.
"""

import pytest

from repro import kernels


@pytest.fixture(scope="session", autouse=True)
def warm_kernel_backend():
    """Pay kernel compilation/JIT warm-up once, before anything is timed."""
    return kernels.warmup()


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive reproduction exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once`."""
    return run_once
