"""Benchcheck smoke — kernel warm-up must never hide inside benchmark keys.

The compiled backends (:mod:`repro.kernels`) pay a one-time cost on first
use: numba JIT-compiles per process, the C backend compiles a shared object
once per source digest (then dlopens from the on-disk cache).  If that cost
ever landed inside a timed benchmark region, a wall-time key in
``BENCH_sim.json`` / ``BENCH_table1.json`` would swing by the warm-up
amount and the 2x regression gate would fire (or, worse, mask a real
regression).

Two defences, both exercised here under the ``benchcheck`` marker so they
run in the same opt-in session as the gate itself
(``pytest benchmarks/ --run-bench-check``):

* ``benchmarks/conftest.py`` installs a session-scoped autouse fixture
  calling :func:`repro.kernels.warmup` before the first benchmark — this
  module asserts the fixture resolves and that a *second* warm-up (what
  every timed region effectively sees) is cheap;
* every available backend is compiled end to end once, so a benchmark
  session that flips ``REPRO_KERNELS`` between runs still never times a
  cold backend.
"""

import time

import pytest

from repro import kernels

pytestmark = pytest.mark.benchcheck

#: a generous bound for an *already warm* backend: the second warmup() call
#: only runs tiny (n <= 8) end-to-end problems, so anything slower than this
#: means compilation leaked past the first call.
_WARM_SECONDS = 1.0


def test_session_fixture_already_warmed(warm_kernel_backend):
    assert warm_kernel_backend in kernels.KERNEL_BACKENDS
    assert warm_kernel_backend == kernels.active_backend()


def test_every_available_backend_compiles_once():
    for backend in kernels.available_backends():
        assert kernels.warmup(backend) == backend


def test_rewarm_is_cheap():
    """After the session fixture, warm-up cost is gone from timed regions."""
    start = time.perf_counter()
    kernels.warmup()
    assert time.perf_counter() - start < _WARM_SECONDS
