"""Benchmarks F1–F3 — Figures 1, 2, 3: B(2,3), RRK(2,8) and II(2,8).

The three figures draw the same 8-node digraph under three definitions; the
benchmarks rebuild each figure's digraph, verify the figure-level facts
(degree, diameter, loop count, pairwise isomorphism) and time the
construction + verification path.
"""

import pytest

from repro.core.isomorphisms import debruijn_to_imase_itoh_isomorphism
from repro.graphs.generators import de_bruijn, imase_itoh, reddy_raghavan_kuhl
from repro.graphs.isomorphism import is_isomorphism
from repro.graphs.properties import diameter


@pytest.mark.benchmark(group="figures-1-3")
def test_figure_1_de_bruijn_2_3(benchmark):
    def build():
        graph = de_bruijn(2, 3)
        return graph, diameter(graph)

    graph, measured_diameter = benchmark(build)
    assert graph.num_vertices == 8
    assert graph.degree == 2
    assert measured_diameter == 3
    assert graph.num_loops() == 2


@pytest.mark.benchmark(group="figures-1-3")
def test_figure_2_rrk_2_8(benchmark):
    def build():
        graph = reddy_raghavan_kuhl(2, 8)
        return graph, graph.same_arcs(de_bruijn(2, 3))

    graph, same_as_debruijn = benchmark(build)
    assert graph.num_vertices == 8
    assert same_as_debruijn  # Remark 2.6


@pytest.mark.benchmark(group="figures-1-3")
def test_figure_3_imase_itoh_2_8(benchmark):
    def build():
        graph = imase_itoh(2, 8)
        mapping = debruijn_to_imase_itoh_isomorphism(2, 3)
        return graph, is_isomorphism(de_bruijn(2, 3), graph, mapping)

    graph, isomorphic = benchmark(build)
    assert graph.num_vertices == 8
    assert diameter(graph) == 3
    assert isomorphic  # Proposition 3.3


@pytest.mark.benchmark(group="figures-1-3")
def test_figures_1_3_larger_instances_scaling(benchmark):
    """Same three-way identification at a size with practical relevance (2^10)."""

    def build():
        d, D = 2, 10
        B = de_bruijn(d, D)
        RRK = reddy_raghavan_kuhl(d, d**D)
        II = imase_itoh(d, d**D)
        mapping = debruijn_to_imase_itoh_isomorphism(d, D)
        return B.same_arcs(RRK), is_isomorphism(B, II, mapping)

    same, isomorphic = benchmark(build)
    assert same and isomorphic
