"""Benchmark gate — BENCH_*.json wall-time regression check.

Run right after a benchmark session rewrote the BENCH files::

    pytest benchmarks/ --run-sim --benchmark-only
    pytest benchmarks/test_bench_gate.py --run-bench-check

Every working-tree ``BENCH_*.json`` is compared against its committed
version (``git show HEAD:...``); any wall-time key (``*_s`` leaf) that an
earlier PR recorded and that is now more than 2x slower fails the gate.
New keys, removed keys and non-timing metrics never do (the policy lives in
:mod:`repro.analysis.bench_check`, unit-tested in
``tests/test_bench_check.py``).
"""

from pathlib import Path

import pytest

from repro.analysis.bench_check import check_file, committed_bench

pytestmark = pytest.mark.benchcheck

_ROOT = Path(__file__).resolve().parents[1]
_BENCH_FILES = sorted(_ROOT.glob("BENCH_*.json"))


def test_bench_files_exist():
    assert _BENCH_FILES, "no BENCH_*.json trajectory files at the repo root"


@pytest.mark.parametrize("path", _BENCH_FILES, ids=lambda p: p.name)
def test_no_wall_time_regression(path):
    if committed_bench(path) is None:
        pytest.skip(f"{path.name} has no committed version to compare against")
    regressions = check_file(path)
    assert not regressions, "\n".join(regressions)
