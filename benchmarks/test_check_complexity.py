"""Benchmarks C45, C46, A1 — the O(D) check, the O(D²) minimisation, and the
generic-isomorphism ablation.

Corollary 4.5 claims the ``B(d,D) ≅ H(d^{p'}, d^{q'}, d)`` decision takes
``O(D)`` time; Corollary 4.6 claims the lens-minimising split is found in
``O(D²)``.  The ablation (A1 in DESIGN.md) compares the O(D) structural check
against deciding the same question with the generic isomorphism search on the
actual ``d^D``-vertex digraphs — the approach the paper's theory makes
unnecessary.
"""

import pytest

from repro.core.checks import is_otis_layout_of_de_bruijn, minimal_lens_split
from repro.graphs.generators import de_bruijn
from repro.graphs.isomorphism import find_isomorphism
from repro.otis.h_digraph import h_digraph


@pytest.mark.benchmark(group="check-O(D)")
@pytest.mark.parametrize("D", [8, 16, 64, 256, 1024])
def test_corollary_4_5_structural_check(benchmark, D):
    """The O(D) check stays sub-millisecond even for astronomically large n."""
    p_prime = D // 2
    q_prime = D - p_prime + 1
    verdict = benchmark(is_otis_layout_of_de_bruijn, 2, p_prime, q_prime)
    assert verdict  # Corollary 4.4: the balanced split works for every even D


@pytest.mark.benchmark(group="check-O(D)")
@pytest.mark.parametrize("D", [8, 16, 64, 256])
def test_corollary_4_6_minimisation(benchmark, D):
    """The O(D^2) lens minimisation over all splits."""
    split = benchmark(minimal_lens_split, 2, D)
    if D % 2 == 0:
        assert (split.p_prime, split.q_prime) == (D // 2, D // 2 + 1)


@pytest.mark.benchmark(group="check-ablation")
@pytest.mark.parametrize("D", [4, 6, 8])
def test_ablation_generic_isomorphism_search(benchmark, once, D):
    """A1: decide the same layout question by explicit isomorphism search.

    This is what the paper's structural theory replaces: the generic search
    must construct and match the full ``2^D``-vertex digraphs.  Compare its
    timing against the ``check-O(D)`` group — the gap is the paper's point
    (orders of magnitude, and growing exponentially with ``D``).
    """
    p_prime, q_prime = D // 2, D // 2 + 1

    def decide_by_search():
        B = de_bruijn(2, D)
        H = h_digraph(2**p_prime, 2**q_prime, 2)
        return find_isomorphism(B, H) is not None

    assert once(benchmark, decide_by_search)


@pytest.mark.benchmark(group="check-ablation")
@pytest.mark.parametrize("D", [4, 6, 8])
def test_ablation_structural_check_same_instances(benchmark, D):
    """The structural check on exactly the instances used by the ablation."""
    p_prime, q_prime = D // 2, D // 2 + 1
    assert benchmark(is_otis_layout_of_de_bruijn, 2, p_prime, q_prime)
