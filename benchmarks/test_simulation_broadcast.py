"""Benchmark A2 — extension study: collectives on OTIS-laid-out topologies.

The paper contains no runtime experiments; this ablation uses the simulator
substrate to quantify why de Bruijn-like topologies are worth laying out
optically: broadcast and gossip complete in ``D = log_d n`` rounds and random
traffic traverses ``O(log n)`` hops, versus ``Θ(n)`` rounds / hops on a ring
with the same per-node link count.  Shape assertions encode those claims.
"""

import pytest

from repro.graphs.generators import de_bruijn, kautz, ring
from repro.graphs.properties import diameter
from repro.routing.broadcast import (
    all_port_broadcast_schedule,
    single_port_broadcast_schedule,
)
from repro.routing.gossip import all_port_gossip_schedule
from repro.simulation import LinkModel, run_random_traffic

LINK = LinkModel(latency=1.0, transmission_time=0.1)


@pytest.mark.benchmark(group="simulation")
@pytest.mark.parametrize(
    "name,graph",
    [
        ("debruijn", de_bruijn(2, 6)),
        ("kautz", kautz(2, 6)),
        ("ring", ring(64)),
    ],
)
def test_random_traffic(benchmark, once, name, graph):
    stats = once(
        benchmark, run_random_traffic, graph, 400, link=LINK, seed=13
    )
    assert stats.delivered == 400
    assert stats.mean_hops <= diameter(graph)
    if name in ("debruijn", "kautz"):
        assert stats.mean_hops < 7  # logarithmic topologies
    else:
        assert stats.mean_hops > 10  # the ring pays Θ(n) hops


@pytest.mark.benchmark(group="simulation")
@pytest.mark.parametrize(
    "name,graph,expected_rounds",
    [
        ("debruijn", de_bruijn(2, 6), 6),
        ("kautz", kautz(2, 6), 6),
        ("ring", ring(64), 32),
    ],
)
def test_all_port_broadcast(benchmark, name, graph, expected_rounds):
    schedule = benchmark(all_port_broadcast_schedule, graph, 0)
    assert schedule.covers_all()
    assert schedule.num_rounds == expected_rounds


@pytest.mark.benchmark(group="simulation")
@pytest.mark.parametrize(
    "name,graph",
    [("debruijn", de_bruijn(2, 6)), ("kautz", kautz(2, 6))],
)
def test_single_port_broadcast(benchmark, name, graph):
    schedule = benchmark(single_port_broadcast_schedule, graph, 0)
    assert schedule.covers_all()
    # single-port broadcast needs at least log2(n) and at most ~2*D rounds
    assert 6 <= schedule.num_rounds <= 2 * 6 + 2


@pytest.mark.benchmark(group="simulation")
@pytest.mark.parametrize(
    "name,graph,expected_rounds",
    [
        ("debruijn", de_bruijn(2, 5), 5),
        ("kautz", kautz(2, 5), 5),
        ("ring", ring(32), 16),
    ],
)
def test_gossip(benchmark, once, name, graph, expected_rounds):
    schedule = once(benchmark, all_port_gossip_schedule, graph)
    assert schedule.completed()
    assert schedule.num_rounds == expected_rounds
