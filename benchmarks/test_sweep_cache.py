"""Benchmark — cold vs warm split-verdict cache on a Table 1 block.

The :class:`repro.otis.sweep.SplitVerdictCache` memoises ``h_diameter``
verdicts on disk, keyed by ``(p, q, d, D)`` and scoped by the code version.
This benchmark runs the diameter-8 Table 1 block twice against one cache
directory: the first (cold) run computes and records every verdict, the
second (warm) run must answer every split from disk and therefore skip the
bit-parallel all-pairs stage entirely.  Both the timings and the hit/miss
ledger go into ``BENCH_table1.json`` so the cache's effect is tracked across
PRs alongside the raw search timings.

The assertion is semantic first (identical rows with and without the cache,
zero misses when warm) and performance second (the warm run must beat the
cold run — the acceptance criterion of the caching layer).
"""

import time
from pathlib import Path

import pytest

from repro.analysis.tables import merge_bench_json
from repro.otis.search import compare_with_paper, table1_rows
from repro.otis.sweep import SplitVerdictCache

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_table1.json"

pytestmark = pytest.mark.table1


@pytest.mark.benchmark(group="table1")
def test_sweep_cache_cold_vs_warm_diameter_8(benchmark, once, tmp_path):
    cache_dir = tmp_path / "verdicts"

    cold_cache = SplitVerdictCache(cache_dir, 2, 8)
    start = time.perf_counter()
    cold = table1_rows(8, cache=cold_cache)
    cold_seconds = time.perf_counter() - start
    assert cold_cache.hits == 0

    warm_cache = SplitVerdictCache(cache_dir, 2, 8)
    assert len(warm_cache) == cold_cache.misses  # every verdict was persisted
    start = time.perf_counter()
    warm = once(benchmark, table1_rows, 8, cache=warm_cache)
    warm_seconds = time.perf_counter() - start

    # Correctness: the cached run reproduces the paper block exactly.
    assert warm.rows == cold.rows
    assert compare_with_paper(warm)["all_match"]
    # Every split is answered from disk — no verdict is recomputed.
    assert warm_cache.misses == 0
    assert warm_cache.hits == cold_cache.misses
    # And that must be measurably faster than computing the verdicts.
    assert warm_seconds < cold_seconds, (
        f"warm cache run ({warm_seconds:.3f}s) not faster than cold "
        f"({cold_seconds:.3f}s)"
    )

    merge_bench_json(
        _BENCH_PATH,
        "sweep_cache_cold_vs_warm_diameter_8",
        {
            "cold_s": round(cold_seconds, 4),
            "warm_s": round(warm_seconds, 4),
            "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
            "verdicts_cached": len(warm_cache),
            "warm_hits": warm_cache.hits,
            "warm_misses": warm_cache.misses,
        },
    )
