"""Benchmark S2 — scenario sweeps: throughput–latency Pareto curves.

The base simulator benchmarks (``BENCH_sim.json``) measure the engines on
healthy, infinite-buffer networks.  These sweeps exercise the composed
scenario layers — arrival process x finite buffers x fault plan x reroute
policy — over two topology families, the paper's layout target ``B(2, D)``
and the OTIS substitution ``H(p, q, d)``, and record throughput–latency
curves with their Pareto front into ``BENCH_scenarios.json`` at the
repository root (``wall_time_s`` keys feed the bench-check gate, same
scheme as every other ``BENCH_*.json``).

All tests carry the ``scenarios`` marker and are opt-in: run them with
``pytest benchmarks/test_figures_scenarios.py --run-scenarios``.
"""

from pathlib import Path

import pytest

from repro.analysis.tables import merge_bench_json
from repro.graphs import de_bruijn
from repro.otis.h_digraph import h_digraph
from repro.simulation import (
    BufferedLinkModel,
    FaultPlan,
    HotspotArrivals,
    Scenario,
    UniformArrivals,
    run_scenario_sweep,
)

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scenarios.json"

pytestmark = pytest.mark.scenarios

RATES = (None, 1.0, 4.0)
SEEDS = range(3)


def _record(name, sweep):
    entry = sweep.to_json()
    front = [row for row in entry["curves"] if row["pareto"]]
    assert front, "every sweep must mark a non-empty Pareto front"
    merge_bench_json(_BENCH_PATH, name, entry)
    return entry


def test_hotspot_buffered_pareto_otis_family():
    """Hotspot traffic into finite retry buffers on H(16, 32, 2) (n=256)."""
    graph = h_digraph(16, 32, 2)
    scenario = Scenario(
        arrivals=HotspotArrivals(
            2000, hotspot=graph.num_vertices // 2, hotspot_fraction=0.5
        ),
        link=BufferedLinkModel(capacity=4, on_full="retry"),
    )
    sweep = run_scenario_sweep(graph, scenario, rates=RATES, seeds=SEEDS)
    entry = _record("hotspot_buffered_H(16,32,2)", sweep)
    # every message either drains or exhausts its retry budget — no limbo
    for row in entry["curves"]:
        assert row["delivered"] + row["dropped_buffer"] == 3 * 2000
        assert row["retransmits"] > 0
    # rate-limited injection must lose less than the t=0 saturation burst
    by_rate = {row["rate"]: row for row in entry["curves"]}
    assert by_rate[1.0]["dropped_buffer"] < by_rate[None]["dropped_buffer"]


def test_fault_reroute_pareto_de_bruijn_family():
    """Uniform traffic on B(2, 6) (n=64) with mid-run link failures.

    ``reroute="arc-disjoint"`` turns would-be fault drops into extra hops;
    the sweep records the degraded-mode throughput–latency trade-off.
    """
    graph = de_bruijn(2, 6)
    faults = FaultPlan.random_link_failures(graph, 8, at=20.0, seed=11)
    scenario = Scenario(
        arrivals=UniformArrivals(2000),
        faults=faults,
        reroute="arc-disjoint",
    )
    sweep = run_scenario_sweep(graph, scenario, rates=RATES, seeds=SEEDS)
    entry = _record("fault_reroute_B(2,6)", sweep)
    assert any(row["rerouted_hops"] > 0 for row in entry["curves"])

    # the drop policy on the same fault plan strictly loses deliveries
    dropping = run_scenario_sweep(
        graph,
        Scenario(arrivals=UniformArrivals(2000), faults=faults),
        rates=(1.0,),
        seeds=SEEDS,
    )
    drop_row = dropping.curves()[0]
    reroute_row = next(row for row in entry["curves"] if row["rate"] == 1.0)
    assert drop_row["dropped_fault"] > 0
    assert reroute_row["delivered"] > drop_row["delivered"]
    merge_bench_json(_BENCH_PATH, "fault_drop_B(2,6)", dropping.to_json())


def test_kitchen_sink_parity_at_bench_scale():
    """Every layer at once on H(8, 16, 2): both engines, identical curves.

    The parity contract the unit suite checks on 4-node graphs, re-asserted
    at benchmark scale with all four scenario layers composed.
    """
    graph = h_digraph(8, 16, 2)
    scenario = Scenario(
        arrivals=HotspotArrivals(800, hotspot=5, hotspot_fraction=0.4),
        link=BufferedLinkModel(capacity=2, on_full="retry", max_retries=8),
        faults=FaultPlan.random_link_failures(graph, 12, at=5.0, seed=3),
        reroute="arc-disjoint",
    )
    batched = run_scenario_sweep(graph, scenario, rates=(None, 2.0), seeds=SEEDS)
    reference = run_scenario_sweep(
        graph, scenario, rates=(None, 2.0), seeds=SEEDS, engine="event"
    )
    assert batched.curves() == reference.curves()
    entry = _record("kitchen_sink_H(8,16,2)", batched)
    assert entry["scenario_digest"] == scenario.digest()
