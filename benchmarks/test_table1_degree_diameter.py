"""Benchmark T1 — Table 1: degree–diameter search over OTIS digraphs.

Regenerates the three blocks of the paper's Table 1 (degree 2, diameters 8, 9
and 10).  To keep the harness in the minutes range the diameter-9 and -10
blocks only test the node counts the paper prints (the full sweep, which also
confirms the *absence* of intermediate rows, is run by
``examples/degree_diameter_search.py --full``); the diameter-8 block sweeps
the full printed range 253..384.

Every benchmark asserts that the measured splits agree with the paper rows —
the reproduction claim, not just a timing.

Each run also appends its wall time and the rows found to
``BENCH_table1.json`` at the repository root, so the performance trajectory
of the search path is tracked across PRs.  All three tests carry the
``table1`` marker; deselect them with ``-m "not table1"`` when only the fast
tier-1 suite is wanted.
"""

import time
from pathlib import Path

import pytest

from repro import kernels
from repro.analysis.tables import merge_bench_json
from repro.otis.search import compare_with_paper, table1_rows

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_table1.json"

pytestmark = pytest.mark.table1


def _record(name, result, seconds):
    """Merge one benchmark entry into BENCH_table1.json."""
    merge_bench_json(
        _BENCH_PATH,
        name,
        {
            "diameter": result.diameter,
            "rows_found": len(result.rows),
            "largest_n": result.largest_n,
            "rows": [
                [n, [list(split) for split in splits]] for n, splits in result.rows
            ],
            "wall_time_s": round(seconds, 4),
            "kernel_backend": kernels.active_backend(),
        },
    )


def _timed(once, benchmark, *args, **kwargs):
    start = time.perf_counter()
    result = once(benchmark, table1_rows, *args, **kwargs)
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="table1")
def test_table1_diameter_8_full_range(benchmark, once):
    result, seconds = _timed(once, benchmark, 8)
    report = compare_with_paper(result)
    assert report["all_match"], report
    # the largest degree-2 diameter-8 OTIS digraph found is the Kautz digraph
    assert result.largest_n == 384
    _record("diameter_8_full_range", result, seconds)


@pytest.mark.benchmark(group="table1")
def test_table1_diameter_9_printed_rows(benchmark, once):
    result, seconds = _timed(once, benchmark, 9, printed_rows_only=True)
    report = compare_with_paper(result)
    assert report["all_match"], report
    assert result.splits_for(512) == [(2, 512), (8, 128)]
    assert result.largest_n == 768
    _record("diameter_9_printed_rows", result, seconds)


@pytest.mark.benchmark(group="table1")
def test_table1_diameter_10_printed_rows(benchmark, once):
    result, seconds = _timed(once, benchmark, 10, printed_rows_only=True)
    report = compare_with_paper(result)
    assert report["all_match"], report
    assert result.splits_for(1024) == [
        (2, 1024),
        (4, 512),
        (8, 256),
        (16, 128),
        (32, 64),
    ]
    assert result.largest_n == 1536
    _record("diameter_10_printed_rows", result, seconds)
