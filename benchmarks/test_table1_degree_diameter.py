"""Benchmark T1 — Table 1: degree–diameter search over OTIS digraphs.

Regenerates the three blocks of the paper's Table 1 (degree 2, diameters 8, 9
and 10).  To keep the harness in the minutes range the diameter-9 and -10
blocks only test the node counts the paper prints (the full sweep, which also
confirms the *absence* of intermediate rows, is run by
``examples/degree_diameter_search.py --full``); the diameter-8 block sweeps
the full printed range 253..384.

Every benchmark asserts that the measured splits agree with the paper rows —
the reproduction claim, not just a timing.
"""

import pytest

from repro.otis.search import compare_with_paper, table1_rows


@pytest.mark.benchmark(group="table1")
def test_table1_diameter_8_full_range(benchmark, once):
    result = once(benchmark, table1_rows, 8)
    report = compare_with_paper(result)
    assert report["all_match"], report
    # the largest degree-2 diameter-8 OTIS digraph found is the Kautz digraph
    assert result.largest_n == 384


@pytest.mark.benchmark(group="table1")
def test_table1_diameter_9_printed_rows(benchmark, once):
    result = once(benchmark, table1_rows, 9, printed_rows_only=True)
    report = compare_with_paper(result)
    assert report["all_match"], report
    assert result.splits_for(512) == [(2, 512), (8, 128)]
    assert result.largest_n == 768


@pytest.mark.benchmark(group="table1")
def test_table1_diameter_10_printed_rows(benchmark, once):
    result = once(benchmark, table1_rows, 10, printed_rows_only=True)
    report = compare_with_paper(result)
    assert report["all_match"], report
    assert result.splits_for(1024) == [
        (2, 1024),
        (4, 512),
        (8, 256),
        (16, 128),
        (32, 64),
    ]
    assert result.largest_n == 1536
