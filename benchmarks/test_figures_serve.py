"""Benchmark V1 — route-query service throughput and tail latency.

Replays :func:`~repro.simulation.workloads.make_workload` traffic against a
self-hosted :class:`~repro.serve.server.RouteQueryServer` (the exact stack
``repro serve run`` deploys) and records throughput plus client-side tail
latency into ``BENCH_serve.json`` at the repository root.  The ``*_s`` keys
feed the bench-check wall-time gate and the ``qps`` keys feed its
throughput direction (fresh < committed / 2 fails), so a serve-layer
slowdown trips the same tripwire as a simulator regression.

The headline claim: micro-batched vectorised dispatch sustains >=100k
next-hop queries/sec through the full HTTP + JSON + asyncio stack on one
core pair.  ``test_closed_form_scales_past_dense_reach`` makes the paper's
point operational — the closed-form router serves a topology whose dense
table would not fit, at the same order of throughput.

All tests carry the ``serve`` marker and are opt-in: run them with
``pytest benchmarks/test_figures_serve.py --run-serve``.
"""

from pathlib import Path

import pytest

from repro.analysis.tables import merge_bench_json
from repro.serve import RouterRegistry, ServerThread, run_bench

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

pytestmark = pytest.mark.serve

#: The acceptance floor for the headline next-hop benchmark (queries/sec).
MIN_NEXT_HOP_QPS = 100_000.0


def _bench(registry, name, **bench_kwargs):
    with ServerThread(registry, batch_window_s=0.001) as server:
        return run_bench(server.host, server.port, topology=name, **bench_kwargs)


def test_next_hop_throughput_de_bruijn():
    """>=100k q/s batch next-hop on B(2,10) (n=1024), closed-form router."""
    registry = RouterRegistry()
    registry.add("bench", "B(2,10)", "closed-form")
    result = _bench(
        registry,
        "bench",
        op="next-hop",
        messages=200_000,
        batch_pairs=2048,
        connections=4,
    )
    assert result.queries == 200_000
    assert result.qps >= MIN_NEXT_HOP_QPS, result.describe()
    assert result.p50_s <= result.p99_s
    merge_bench_json(
        _BENCH_PATH, "serve_next_hop_B(2,10)_uniform", result.to_json()
    )


def test_eta_throughput_otis_hotspot():
    """ETA queries under hotspot traffic on the H(16,32,2) OTIS row."""
    registry = RouterRegistry()
    registry.add("otis", "H(16,32,2)", "closed-form")
    result = _bench(
        registry,
        "otis",
        op="eta",
        workload="hotspot",
        messages=100_000,
        batch_pairs=2048,
        connections=4,
    )
    assert result.queries == 100_000
    # The eta walk is a few vectorised hops instead of one lookup; hold it
    # to half the next-hop floor.
    assert result.qps >= MIN_NEXT_HOP_QPS / 2, result.describe()
    merge_bench_json(
        _BENCH_PATH, "serve_eta_H(16,32,2)_hotspot", result.to_json()
    )


def test_closed_form_scales_past_dense_reach():
    """Serve B(2,16) (n=65536): 8GB of dense table replaced by O(n) state.

    The registry refuses nothing here — the closed-form router carries zero
    relabelling state for the de Bruijn digraph itself, so the serve layer
    routes a 65k-node topology with the same code path as a 16-node one.
    """
    registry = RouterRegistry()
    registry.add("big", "B(2,16)", "closed-form")
    assert registry.snapshot()["big"]["state_bytes"] == 0
    result = _bench(
        registry,
        "big",
        op="next-hop",
        messages=100_000,
        batch_pairs=4096,
        connections=4,
    )
    assert result.qps >= MIN_NEXT_HOP_QPS / 2, result.describe()
    merge_bench_json(
        _BENCH_PATH, "serve_next_hop_B(2,16)_uniform", result.to_json()
    )
