"""Benchmarks F4, F5, X1, X2 — Figures 4 and 5, Examples 3.3.1 and 3.3.2.

* F4 / X1: the cyclic permutation of Example 3.3.1 on ``Z_6``, its
  conjugating permutation ``g`` (Figure 4) and the resulting isomorphism
  ``A(f, Id, 2) ≅ B(d, 6)``.
* F5 / X2: the non-cyclic permutation of Example 3.3.2 and the decomposition
  of ``A(f, Id, 1)`` into ``C_2 ⊗ B(2,1)`` plus two ``C_1 ⊗ B(2,1)``
  components (Figure 5).
"""

import pytest

from repro.core.alphabet_digraph import AlphabetDigraphSpec
from repro.core.components import component_structure, decompose_non_cyclic
from repro.core.isomorphisms import debruijn_to_alphabet_isomorphism, g_permutation
from repro.graphs.generators import de_bruijn
from repro.graphs.isomorphism import is_isomorphism
from repro.permutations import Permutation, identity

EXAMPLE_331_F = Permutation([3, 4, 5, 2, 0, 1])
EXAMPLE_332_F = Permutation([2, 1, 0])


@pytest.mark.benchmark(group="figures-4-5")
def test_figure_4_g_permutation(benchmark):
    g = benchmark(g_permutation, EXAMPLE_331_F, 2)
    # Figure 4: g(0)=2, g(1)=5, g(2)=1, g(3)=4, g(4)=0, g(5)=3
    assert g.as_tuple() == (2, 5, 1, 4, 0, 3)


@pytest.mark.benchmark(group="figures-4-5")
def test_example_3_3_1_isomorphism_d2(benchmark):
    spec = AlphabetDigraphSpec(d=2, D=6, f=EXAMPLE_331_F, sigma=identity(2), j=2)

    def build_and_verify():
        mapping = debruijn_to_alphabet_isomorphism(spec)
        return is_isomorphism(de_bruijn(2, 6), spec.build(), mapping)

    assert benchmark(build_and_verify)


@pytest.mark.benchmark(group="figures-4-5")
def test_example_3_3_1_isomorphism_d3(benchmark, once):
    """The example holds for any degree; run it at d=3 (729 vertices)."""
    spec = AlphabetDigraphSpec(d=3, D=6, f=EXAMPLE_331_F, sigma=identity(3), j=2)

    def build_and_verify():
        mapping = debruijn_to_alphabet_isomorphism(spec)
        return is_isomorphism(de_bruijn(3, 6), spec.build(), mapping)

    assert once(benchmark, build_and_verify)


@pytest.mark.benchmark(group="figures-4-5")
def test_figure_5_component_structure(benchmark):
    spec = AlphabetDigraphSpec(d=2, D=3, f=EXAMPLE_332_F, sigma=identity(2), j=1)
    report = benchmark(component_structure, spec)
    assert not report.is_connected
    assert report.component_sizes == (2, 2, 4)


@pytest.mark.benchmark(group="figures-4-5")
def test_figure_5_decomposition(benchmark):
    spec = AlphabetDigraphSpec(d=2, D=3, f=EXAMPLE_332_F, sigma=identity(2), j=1)
    factors = benchmark(decompose_non_cyclic, spec)
    summary = sorted((f.debruijn_dimension, f.circuit_length) for f in factors)
    assert summary == [(1, 1), (1, 1), (1, 2)]
    assert all(f.certified for f in factors)


@pytest.mark.benchmark(group="figures-4-5")
def test_figure_5_decomposition_d3(benchmark, once):
    """Remark 3.10 at d=3: the same non-cyclic f on 27 vertices."""
    spec = AlphabetDigraphSpec(d=3, D=3, f=EXAMPLE_332_F, sigma=identity(3), j=1)
    factors = once(benchmark, decompose_non_cyclic, spec)
    assert sum(f.size for f in factors) == 27
    assert all(f.certified for f in factors)
