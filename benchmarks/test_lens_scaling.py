"""Benchmark C44 — Corollary 4.4: Θ(√n) lenses versus the O(n) baseline.

The paper's quantitative claim: the de Bruijn digraph ``B(d, D)`` (even
``D``) has an OTIS layout with ``p + q = (1 + d)·√n`` lenses, whereas the
previously known layout through the Imase–Itoh digraph needs ``d + n``.
These benchmarks build the actual layouts (with their explicit node→
transceiver assignments, not just the counts) across a diameter sweep and
assert the scaling shape: constant normalised lens count for the new layout,
linear growth for the baseline, and a saving ratio that grows like √n.
"""

import math

import pytest

from repro.analysis.lens_count import lens_scaling_study
from repro.otis.layout import imase_itoh_layout, optimal_debruijn_layout


@pytest.mark.benchmark(group="lens-scaling")
def test_lens_scaling_study_even_diameters(benchmark):
    rows = benchmark(lens_scaling_study, 2, [2, 4, 6, 8, 10, 12, 14, 16])
    for row in rows:
        assert row.lenses_optimal == 3 * 2 ** (row.D // 2)
        assert row.lenses_imase_itoh == 2 + 2**row.D
        assert row.normalised == pytest.approx(3.0)
    ratios = [row.ratio for row in rows]
    assert ratios == sorted(ratios)
    # the ratio grows like sqrt(n)/3
    last = rows[-1]
    assert last.ratio == pytest.approx(math.sqrt(last.n) / 3, rel=0.05)


@pytest.mark.benchmark(group="lens-scaling")
@pytest.mark.parametrize("D", [4, 6, 8])
def test_optimal_layout_construction_cost(benchmark, D):
    """Time to construct and verify the full Θ(√n)-lens layout of B(2, D)."""

    def build():
        layout = optimal_debruijn_layout(2, D)
        return layout, layout.verify()

    layout, verified = benchmark(build)
    assert verified
    assert layout.num_lenses == 3 * 2 ** (D // 2)


@pytest.mark.benchmark(group="lens-scaling")
@pytest.mark.parametrize("D", [4, 6, 8])
def test_baseline_imase_itoh_layout_cost(benchmark, D):
    """The O(n)-lens baseline layout of the same network size."""

    def build():
        layout = imase_itoh_layout(2, 2**D)
        return layout, layout.verify()

    layout, verified = benchmark(build)
    assert verified
    assert layout.num_lenses == 2 + 2**D
    # the paper's improvement factor at this size
    assert layout.num_lenses / (3 * 2 ** (D // 2)) > 1
