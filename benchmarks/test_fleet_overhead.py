"""Benchmark — lease-driver overhead over the serial sharded sweep.

The fleet driver adds one lease claim (an ``O_EXCL`` create), a heartbeat
thread and one lease release around every chunk.  This benchmark runs the
same small diameter-6 manifest through :func:`repro.otis.sweep.run_sweep`
(the serial chunk loop) and through :func:`repro.fleet.run_fleet` (claim →
run → publish → release) and records both wall times in
``BENCH_table1.json`` — the claim protocol is supposed to cost milliseconds
per chunk, not to tax the search itself.

Correctness first, as everywhere: both stores must merge to byte-identical
rows before any timing is recorded.
"""

import time
from pathlib import Path

import pytest

from repro.analysis.tables import merge_bench_json
from repro.fleet import SweepFleetJob, run_fleet
from repro.otis.sweep import ChunkManifest, ChunkStore, merge_sweep, run_sweep

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_table1.json"

pytestmark = pytest.mark.table1


@pytest.mark.benchmark(group="fleet")
def test_fleet_driver_overhead_diameter_6(benchmark, once, tmp_path):
    manifest = ChunkManifest.build(2, 6, range(60, 71), chunk_size=2)

    serial_store = ChunkStore(tmp_path / "serial")
    start = time.perf_counter()
    run_sweep(manifest, serial_store)
    serial_seconds = time.perf_counter() - start

    fleet_store = ChunkStore(tmp_path / "fleet")
    job = SweepFleetJob(manifest, fleet_store)
    start = time.perf_counter()
    outcome = once(benchmark, run_fleet, job, ttl=30.0)
    fleet_seconds = time.perf_counter() - start

    # Correctness: every chunk ran exactly once, merges are byte-identical.
    assert outcome["complete"] and not outcome["lost"]
    assert sorted(outcome["ran"]) == sorted(c.chunk_id for c in manifest.chunks)
    assert (
        merge_sweep(manifest, fleet_store).rows
        == merge_sweep(manifest, serial_store).rows
    )

    per_chunk_ms = (
        (fleet_seconds - serial_seconds) / len(manifest.chunks) * 1000.0
    )
    merge_bench_json(
        _BENCH_PATH,
        "fleet_driver_overhead_diameter_6",
        {
            "chunks": len(manifest.chunks),
            "serial_s": round(serial_seconds, 4),
            "fleet_s": round(fleet_seconds, 4),
            "lease_overhead_ms_per_chunk": round(per_chunk_ms, 3),
        },
    )
