"""Benchmark S1 — simulator engines: batched vs. event-loop reference.

The paper's Section 1 argument (optical vs. electrical multihop networks)
needs traffic simulated over the ``H(p, q, d)`` topologies at realistic
scale.  These benchmarks pit the vectorised
:class:`repro.simulation.network.BatchedNetworkSimulator` against the
event-at-a-time reference on a 100k-message uniform workload over the
diameter-10 flagship instance ``H(32, 64, 2)`` (n=1024, the largest Table 1
row), asserting bit-identical :class:`NetworkStats` *and* a >=10x wall-clock
win, and record the multi-workload sweep curves of the throughput driver.

Every run merges its numbers into ``BENCH_sim.json`` at the repository root
so the simulator performance trajectory is tracked across PRs (same scheme
as ``BENCH_table1.json``).  Each payload records the active kernel backend
(:mod:`repro.kernels`) next to its wall-time keys, so a regression hunt
never compares a compiled-backend time against a numpy-fallback time
without noticing.  All tests carry the ``sim`` marker and are opt-in: run
them with ``pytest benchmarks/test_simulation_throughput.py --run-sim``.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro import kernels
from repro.otis.h_digraph import h_digraph
from repro.routing.paths import routing_table_for
from repro.simulation.network import (
    BatchedNetworkSimulator,
    LinkModel,
    NetworkSimulator,
)
from repro.simulation.workloads import run_throughput_sweep, uniform_random_pairs

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sim.json"

pytestmark = pytest.mark.sim


def _record(name, payload):
    """Merge one benchmark entry into BENCH_sim.json."""
    data = {}
    if _BENCH_PATH.exists():
        try:
            data = json.loads(_BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[name] = payload
    _BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _messages_equal(reference, batched):
    return all(
        a.ident == b.ident
        and a.hops == b.hops
        and a.creation_time == b.creation_time
        and (
            a.arrival_time == b.arrival_time
            or (math.isnan(a.arrival_time) and math.isnan(b.arrival_time))
        )
        for a, b in zip(reference, batched)
    )


def test_batched_engine_parity_and_speedup_100k():
    """100k uniform messages on H(32, 64, 2): identical stats, >=10x faster."""
    graph = h_digraph(32, 64, 2)
    traffic = uniform_random_pairs(graph.num_vertices, 100_000, rng=0)
    link = LinkModel(latency=1.0, transmission_time=1.0)
    routing = routing_table_for(graph)

    start = time.perf_counter()
    ref_stats, ref_messages = NetworkSimulator(graph, link=link, routing=routing).run(
        traffic
    )
    ref_seconds = time.perf_counter() - start

    start = time.perf_counter()
    bat_stats, bat_messages = BatchedNetworkSimulator(
        graph, link=link, routing=routing
    ).run(traffic)
    bat_seconds = time.perf_counter() - start

    # the reproduction claim: bit-identical statistics and message records
    assert bat_stats == ref_stats
    assert _messages_equal(ref_messages, bat_messages)
    assert bat_stats.delivered == 100_000

    # engine-pass timing (return_messages=False): the compiled-kernel claim
    # lives here, where the work is all rounds — ``batched_s`` above also
    # pays the per-message ``Message`` materialisation, which no backend
    # touches.  Both passes must agree bit-for-bit with the full run.
    kern_sim = BatchedNetworkSimulator(graph, link=link, routing=routing)
    numpy_sim = BatchedNetworkSimulator(
        graph, link=link, routing=routing, kernels="numpy"
    )
    engine_seconds = engine_numpy_seconds = float("inf")
    for _ in range(2):  # best-of-2: one background blip must not gate
        start = time.perf_counter()
        ((kern_engine_stats, _),) = kern_sim.run_many(
            [traffic], return_messages=False
        )
        engine_seconds = min(engine_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        ((numpy_engine_stats, _),) = numpy_sim.run_many(
            [traffic], return_messages=False
        )
        engine_numpy_seconds = min(
            engine_numpy_seconds, time.perf_counter() - start
        )
        assert kern_engine_stats == ref_stats
        assert numpy_engine_stats == ref_stats

    speedup = ref_seconds / bat_seconds
    kernel_speedup = engine_numpy_seconds / engine_seconds
    _record(
        "uniform_100k_H(32,64,2)",
        {
            "graph": graph.name,
            "nodes": graph.num_vertices,
            "links": graph.num_arcs,
            "messages": 100_000,
            "reference_s": round(ref_seconds, 4),
            "batched_s": round(bat_seconds, 4),
            "speedup": round(speedup, 2),
            "engine_s": round(engine_seconds, 4),
            "engine_numpy_s": round(engine_numpy_seconds, 4),
            "kernel_backend": kern_sim.kernel_backend,
            "kernel_speedup": round(kernel_speedup, 2),
            "makespan": bat_stats.makespan,
            "throughput": bat_stats.throughput(),
            "mean_latency": bat_stats.mean_latency,
        },
    )
    assert speedup >= 10.0, f"batched engine only {speedup:.1f}x faster"
    if kern_sim.kernel_backend != "numpy":
        assert kernel_speedup >= 5.0, (
            f"{kern_sim.kernel_backend} engine only {kernel_speedup:.1f}x "
            "faster than the numpy rounds"
        )


def test_throughput_sweep_driver_records_curves():
    """Multi-workload sweep on H(16, 32, 2): all delivered, curves recorded."""
    graph = h_digraph(16, 32, 2)
    sweep = run_throughput_sweep(
        graph,
        workloads=("uniform", "hotspot", "permutation"),
        rates=(None, 2.0, 8.0),
        seeds=range(3),
        num_messages=2000,
        link=LinkModel(latency=1.0, transmission_time=1.0),
    )
    assert len(sweep.points) == 3 * 3 * 3
    # H(16, 32, 2) is strongly connected: everything must drain
    for point in sweep.points:
        assert point.stats.undelivered == 0
    rows = sweep.curves()
    assert len(rows) == 9
    # the saturation point (everything injected at t=0) must sustain more
    # delivered messages per time unit than the rate-limited low-load points
    uniform = {row["rate"]: row for row in rows if row["workload"] == "uniform"}
    assert uniform[None]["throughput"] > uniform[2.0]["throughput"]
    _record("sweep_H(16,32,2)", sweep.to_json())


def test_run_many_amortises_many_seeds():
    """Stacking 10 seeds in one run_many pass beats 10 separate runs."""
    graph = h_digraph(16, 32, 2)
    link = LinkModel(latency=1.0, transmission_time=1.0)
    simulator = BatchedNetworkSimulator(graph, link=link)
    traffics = [
        uniform_random_pairs(graph.num_vertices, 10_000, rng=seed)
        for seed in range(10)
    ]

    start = time.perf_counter()
    stacked = simulator.run_many(traffics, return_messages=False)
    stacked_seconds = time.perf_counter() - start

    start = time.perf_counter()
    separate = [simulator.run(traffic)[0] for traffic in traffics]
    separate_seconds = time.perf_counter() - start

    assert [stats for stats, _ in stacked] == separate
    _record(
        "run_many_10x10k_H(16,32,2)",
        {
            "stacked_s": round(stacked_seconds, 4),
            "separate_s": round(separate_seconds, 4),
            "amortisation": round(separate_seconds / stacked_seconds, 2),
            "kernel_backend": simulator.kernel_backend,
        },
    )
    assert stacked_seconds < separate_seconds


def test_router_comparison_100k_n1024():
    """Closed-form vs dense-table routing at n = 1024: no regression.

    Identical NetworkStats (the routers are bit-identical on routes) and a
    wall-clock ratio within noise of 1 — the closed form pays O(D) integer
    arithmetic per hop where the table pays one gather, but drops the
    routing state from O(n^2) to O(n) bytes.
    """
    graph = h_digraph(32, 64, 2)
    traffic = uniform_random_pairs(graph.num_vertices, 100_000, rng=0)
    link = LinkModel(latency=1.0, transmission_time=1.0)

    from repro.routing.routers import make_router

    results = {}
    for kind in ("dense", "closed-form"):
        router = make_router(graph, kind)
        simulator = BatchedNetworkSimulator(graph, link=link, router=router)
        start = time.perf_counter()
        stats, _ = simulator.run(traffic)
        seconds = time.perf_counter() - start
        results[kind] = (stats, seconds, router.state_bytes())

    dense_stats, dense_s, dense_bytes = results["dense"]
    closed_stats, closed_s, closed_bytes = results["closed-form"]
    assert closed_stats == dense_stats  # bit-identical routes => bit-identical stats
    assert closed_stats.delivered == 100_000
    assert closed_bytes * 100 < dense_bytes  # O(n) vs O(n^2) state
    ratio = closed_s / dense_s
    _record(
        "routers_100k_H(32,64,2)",
        {
            "graph": graph.name,
            "nodes": graph.num_vertices,
            "messages": 100_000,
            "dense_s": round(dense_s, 4),
            "closed_form_s": round(closed_s, 4),
            "closed_over_dense": round(ratio, 3),
            "dense_state_bytes": dense_bytes,
            "closed_form_state_bytes": closed_bytes,
            "kernel_backend": kernels.active_backend(),
        },
    )
    assert ratio <= 1.75, f"closed-form routing {ratio:.2f}x slower than the table"


def test_table_free_large_n_100k():
    """100k uniform messages on H(64, 128, 2) without a dense (n, n) table.

    The headline unlock of the router abstraction: n = 4096 would need a
    ~270 MB table pair; the auto policy routes it closed-form with O(n)
    relabelling state, and the run completes at the same per-message speed
    as the n = 1024 benchmark.
    """
    from repro.routing.routers import AUTO_DENSE_MAX_N, make_router

    graph = h_digraph(64, 128, 2)
    assert graph.num_vertices > AUTO_DENSE_MAX_N
    router = make_router(graph, "auto")
    assert router.kind == "closed-form"  # no dense table anywhere
    state_bytes = router.state_bytes()
    assert state_bytes < 1 << 20  # O(n): two int64 relabelling arrays

    traffic = uniform_random_pairs(graph.num_vertices, 100_000, rng=0)
    link = LinkModel(latency=1.0, transmission_time=1.0)
    simulator = BatchedNetworkSimulator(graph, link=link, router=router)
    start = time.perf_counter()
    stats, _ = simulator.run(traffic)
    seconds = time.perf_counter() - start
    assert stats.delivered == 100_000
    _record(
        "uniform_100k_H(64,128,2)",
        {
            "graph": graph.name,
            "nodes": graph.num_vertices,
            "links": graph.num_arcs,
            "messages": 100_000,
            "router": router.kind,
            "routing_state_bytes": state_bytes,
            "dense_table_would_be_bytes": 2 * 8 * graph.num_vertices**2,
            "batched_s": round(seconds, 4),
            "kernel_backend": simulator.kernel_backend,
            "makespan": stats.makespan,
            "throughput": stats.throughput(),
            "mean_latency": stats.mean_latency,
            "mean_hops": stats.mean_hops,
        },
    )


def test_million_message_sharded_study_n_1e5():
    """10 seeds x 100k messages on H(128, 2048, 2) (n = 131072).

    The study the dense table made impossible: a million messages over a
    10^5-node topology, replicas sharded over a process pool as resumable
    chunks.  Routing state is ~2 MB (the dense table would be ~275 GB).
    Spot-checks one replica against the in-process engine — the merge
    contract (byte-identical stats) at full scale.
    """
    import tempfile

    from repro.routing.routers import make_router
    from repro.simulation.sharding import run_many_sharded

    graph = h_digraph(128, 2048, 2)
    assert graph.num_vertices == 131_072
    router = make_router(graph, "auto")
    assert router.kind == "closed-form"

    link = LinkModel(latency=1.0, transmission_time=1.0)
    seeds = range(10)
    traffics = [
        uniform_random_pairs(graph.num_vertices, 100_000, rng=seed)
        for seed in seeds
    ]
    with tempfile.TemporaryDirectory() as store:
        start = time.perf_counter()
        merged = run_many_sharded(
            graph,
            traffics,
            link=link,
            router="closed-form",
            store=store,
            chunk_size=2,
            workers=4,
        )
        seconds = time.perf_counter() - start
    assert len(merged) == 10
    assert all(stats.delivered == 100_000 for stats in merged)

    # merge contract at scale: one replica recomputed in-process matches
    solo_stats, _ = BatchedNetworkSimulator(
        graph, link=link, router="closed-form"
    ).run(traffics[3])
    assert merged[3] == solo_stats

    _record(
        "sharded_1M_H(128,2048,2)",
        {
            "graph": graph.name,
            "nodes": graph.num_vertices,
            "links": graph.num_arcs,
            "replicas": 10,
            "messages_total": 1_000_000,
            "workers": 4,
            "router": "closed-form",
            "routing_state_bytes": router.state_bytes(),
            "dense_table_would_be_bytes": 2 * 8 * graph.num_vertices**2,
            "wall_time_s": round(seconds, 4),
            "kernel_backend": kernels.active_backend(),
            "mean_hops": merged[0].mean_hops,
        },
    )
