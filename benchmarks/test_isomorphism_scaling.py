"""Benchmarks P32, P39 — constructive isomorphism scaling (Propositions 3.2, 3.9).

The paper's isomorphisms are explicit vertex bijections; these benchmarks
measure the cost of *building and verifying* them as the digraph grows
(n = d^D up to 4096 vertices), for random alphabet permutations (Prop 3.2)
and random cyclic index permutations (Prop 3.9).  Each run asserts the
bijection really is an isomorphism — the reproduction claim — so the timing
covers construction plus full arc-multiset verification.
"""

import numpy as np
import pytest

from repro.core.alphabet_digraph import AlphabetDigraphSpec, b_sigma
from repro.core.isomorphisms import (
    debruijn_to_alphabet_isomorphism,
    prop_3_2_isomorphism,
)
from repro.graphs.generators import de_bruijn
from repro.graphs.isomorphism import is_isomorphism
from repro.permutations import random_cyclic_permutation, random_permutation


@pytest.mark.benchmark(group="prop-3-2")
@pytest.mark.parametrize("d,D", [(2, 6), (2, 10), (2, 12), (4, 5)])
def test_prop_3_2_construct_and_verify(benchmark, once, d, D):
    rng = np.random.default_rng(D)
    sigma = random_permutation(d, rng)

    def build_and_verify():
        mapping = prop_3_2_isomorphism(d, D, sigma)
        return is_isomorphism(b_sigma(d, D, sigma), de_bruijn(d, D), mapping)

    assert once(benchmark, build_and_verify)


@pytest.mark.benchmark(group="prop-3-2")
@pytest.mark.parametrize("d,D", [(2, 10), (2, 14), (2, 18)])
def test_prop_3_2_mapping_only(benchmark, d, D):
    """Just the bijection W (no graph construction): stays fast up to 2^18."""
    rng = np.random.default_rng(D)
    sigma = random_permutation(d, rng)
    mapping = benchmark(prop_3_2_isomorphism, d, D, sigma)
    assert sorted(np.unique(mapping)) == list(range(d**D))[: len(np.unique(mapping))]
    assert len(np.unique(mapping)) == d**D


@pytest.mark.benchmark(group="prop-3-9")
@pytest.mark.parametrize("d,D", [(2, 6), (2, 10), (2, 12), (3, 7)])
def test_prop_3_9_construct_and_verify(benchmark, once, d, D):
    rng = np.random.default_rng(D)
    spec = AlphabetDigraphSpec(
        d=d,
        D=D,
        f=random_cyclic_permutation(D, rng),
        sigma=random_permutation(d, rng),
        j=int(rng.integers(D)),
    )

    def build_and_verify():
        mapping = debruijn_to_alphabet_isomorphism(spec)
        return is_isomorphism(de_bruijn(d, D), spec.build(), mapping)

    assert once(benchmark, build_and_verify)
