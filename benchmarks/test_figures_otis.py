"""Benchmarks F6, F7, F8 — Figures 6, 7 and 8: the OTIS wiring and H(4,8,2).

* F6: ``OTIS(3, 6)`` — the wiring drawn in Figure 6 (18 one-to-one beams,
  9 lenses, bijective transpose connection).
* F7: ``H(4, 8, 2)`` — the transmitter/receiver wiring of Figure 7.
* F8: ``B(2, 4)`` relabelled with the ``H(4, 8, 2)`` adjacency of Figure 8,
  via the constructive isomorphism of Corollary 4.2.
"""

import numpy as np
import pytest

from repro.core.checks import otis_alphabet_spec
from repro.core.isomorphisms import debruijn_to_alphabet_isomorphism
from repro.graphs.generators import de_bruijn
from repro.graphs.isomorphism import is_isomorphism
from repro.graphs.properties import diameter
from repro.otis.architecture import OTISArchitecture
from repro.otis.h_digraph import h_digraph


@pytest.mark.benchmark(group="figures-6-8")
def test_figure_6_otis_3_6_wiring(benchmark):
    def build():
        otis = OTISArchitecture(3, 6)
        return otis, otis.connection_array()

    otis, wiring = benchmark(build)
    assert otis.num_lenses == 9
    assert otis.num_transmitters == 18
    assert sorted(wiring.tolist()) == list(range(18))
    assert otis.receiver_of(0, 0) == (5, 2)


@pytest.mark.benchmark(group="figures-6-8")
def test_figure_7_h_4_8_2_wiring(benchmark):
    graph = benchmark(h_digraph, 4, 8, 2)
    assert graph.num_vertices == 16
    assert graph.degree == 2
    # Figure 7/8 adjacency: 0000 -> {1101, 1111}
    assert set(graph.out_neighbors(0)) == {13, 15}
    assert np.all(graph.in_degrees() == 2)


@pytest.mark.benchmark(group="figures-6-8")
def test_figure_8_debruijn_labelling_of_h_4_8_2(benchmark):
    def build():
        spec = otis_alphabet_spec(2, 2, 3)
        mapping = debruijn_to_alphabet_isomorphism(spec)
        H = h_digraph(4, 8, 2)
        return H, mapping, is_isomorphism(de_bruijn(2, 4), H, mapping)

    H, mapping, ok = benchmark(build)
    assert ok
    assert diameter(H) == 4
    # the mapping is a genuine relabelling of all 16 vertices
    assert sorted(mapping.tolist()) == list(range(16))
