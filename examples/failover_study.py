#!/usr/bin/env python
"""Kill a link mid-run on H(32, 64, 2) and compare failover policies.

The free-space optical links of an OTIS system are a physical single point
of failure: misalign one lens pair and every arc it carries goes dark at
once.  This script stages exactly that on the 1024-processor OTIS digraph
H(32, 64, 2) — hotspot traffic converges on one hub node, and halfway
through the run a :class:`~repro.simulation.FaultPlan` severs the hub's
busiest incoming arc — then compares the two scenario reroute policies:

* ``reroute="none"``       — messages that reach the severed arc after the
  cut are dropped (``dropped_fault`` counts them);
* ``reroute="arc-disjoint"`` — the scenario layer deflects them onto the
  surviving arc-disjoint detour, trading extra hops (``rerouted_hops``)
  and latency for delivery.

Both runs replay the *identical* seeded workload, so every difference in
the table below is the policy, not the traffic.

Run with:  python examples/failover_study.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.otis.h_digraph import h_digraph
from repro.simulation import (
    BatchedNetworkSimulator,
    FaultPlan,
    HotspotArrivals,
    Scenario,
)

P, Q, D = 32, 64, 2
MESSAGES = 400
SEED = 7


def run(graph, scenario, seed=SEED):
    traffic = scenario.traffic(graph.num_vertices, rng=seed)
    stats, _ = BatchedNetworkSimulator(graph, scenario=scenario).run(traffic)
    return stats


def main() -> None:
    graph = h_digraph(P, Q, D)
    hub = graph.num_vertices // 2
    arrivals = HotspotArrivals(
        MESSAGES, hotspot=hub, hotspot_fraction=0.9, rate=4.0
    )

    # Cut when half the workload is already in flight.
    release_times = [t for _, _, t in arrivals.traffic(graph.num_vertices, rng=SEED)]
    cut_at = float(np.median(release_times))

    healthy = run(graph, Scenario(arrivals=arrivals))

    # Sever whichever of the hub's incoming arcs the primary routes lean on.
    for tail in graph.in_neighbors(hub):
        faults = FaultPlan.cut_links(graph, tail, hub, at=cut_at)
        dropped = run(graph, Scenario(arrivals=arrivals, faults=faults))
        if dropped.dropped_fault > 0:
            break
    rerouted = run(
        graph,
        Scenario(arrivals=arrivals, faults=faults, reroute="arc-disjoint"),
    )

    print(f"H({P},{Q},{D}): n={graph.num_vertices}, hub={hub}, "
          f"arc {tail}->{hub} severed at t={cut_at:.1f}")
    rows = []
    for name, stats in (
        ("healthy", healthy),
        ("fault, drop", dropped),
        ("fault, arc-disjoint", rerouted),
    ):
        rows.append(
            {
                "policy": name,
                "delivered": stats.delivered,
                "dropped (fault)": stats.dropped_fault,
                "rerouted hops": stats.rerouted_hops,
                "mean latency": stats.mean_latency,
                "makespan": stats.makespan,
            }
        )
    print(format_table(rows))

    recovered = rerouted.delivered - dropped.delivered
    penalty = rerouted.mean_latency - healthy.mean_latency
    delivery_restored = recovered > 0 and rerouted.rerouted_hops > 0
    print(f"\ndrop policy loses messages: {dropped.dropped_fault > 0}")
    print(f"rerouted delivery: {delivery_restored}")
    print(f"messages recovered by reroute: {recovered}")
    print(f"degraded-mode latency penalty: {penalty:+.3f} "
          f"({rerouted.mean_latency:.3f} vs healthy {healthy.mean_latency:.3f})")


if __name__ == "__main__":
    main()
