#!/usr/bin/env python
"""Drive a degree–diameter sweep with the lease-based fleet driver.

``python -m repro sweep --shard i/k`` splits work *statically*: every host
must be told its index and a crashed host's shard never finishes.  The fleet
driver of :mod:`repro.fleet` removes both problems — any number of workers
point at one shared out-dir and **claim chunks dynamically** through atomic
lease files with a TTL, so shards are auto-assigned and a dead worker's
chunk is reclaimed the moment its lease expires.

This script demonstrates the whole cycle on a small diameter-6 sweep:

1. two fleet worker *processes* drain one chunk store concurrently — the
   lease files are their only coordination, and no chunk runs twice;
2. a third worker "crashes" (we plant its lease with an ancient heartbeat
   and no published result), and a relaunched fleet reclaims the chunk;
3. the merged table is compared against the direct in-process search —
   byte-identical rows, whatever the claim order was.

Run with:  python examples/fleet_search.py
"""

import json
import multiprocessing
import os
import tempfile
import time
from pathlib import Path

from repro.fleet import (
    LeaseManager,
    SweepFleetJob,
    fleet_status,
    format_status,
    run_fleet,
)
from repro.otis.search import degree_diameter_search
from repro.otis.sweep import ChunkManifest, ChunkStore

D, N_MIN, N_MAX, CHUNK_SIZE = 6, 60, 70, 2
TTL = 30.0


def build_job(out_dir) -> SweepFleetJob:
    # Every worker derives the identical manifest from the shared
    # parameters - chunk ids are the coordination mechanism, the leases
    # only decide who runs which chunk.
    manifest = ChunkManifest.build(
        2, D, range(N_MIN, N_MAX + 1), chunk_size=CHUNK_SIZE
    )
    return SweepFleetJob(manifest, ChunkStore(out_dir))


def fleet_worker(out_dir, result_file: str) -> None:
    job = build_job(out_dir)
    outcome = run_fleet(job, ttl=TTL, worker_id=f"worker-{os.getpid()}")
    Path(result_file).write_text(json.dumps(outcome))


def main() -> None:
    direct = degree_diameter_search(2, D, N_MIN, N_MAX)

    with tempfile.TemporaryDirectory() as tmp:
        out_dir = Path(tmp) / "sweep"
        job = build_job(out_dir)
        print(f"fleet job: {job.describe()}")

        # --- a crashed worker: lease held, heartbeat long dead, no result.
        leases = LeaseManager(out_dir / "leases", ttl=TTL)
        victim = job.chunks()[0]
        stale = leases.try_acquire(victim.chunk_id, worker="crashed-host")
        ancient = time.time() - 3600
        os.utime(stale.path, (ancient, ancient))
        print(f"planted an expired lease of 'crashed-host' on {victim.chunk_id}")

        # --- two live workers drain the store concurrently.
        results = [Path(tmp) / "a.json", Path(tmp) / "b.json"]
        workers = [
            multiprocessing.Process(
                target=fleet_worker, args=(out_dir, str(result))
            )
            for result in results
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        outcomes = [json.loads(result.read_text()) for result in results]
        ran = [set(outcome["ran"]) for outcome in outcomes]
        for outcome in outcomes:
            print(
                f"{outcome['worker']}: ran {len(outcome['ran'])} of "
                f"{outcome['chunks']} chunks"
            )
        print(f"no chunk ran twice: {ran[0].isdisjoint(ran[1])}")
        print(
            "expired lease reclaimed: "
            f"{victim.chunk_id in (ran[0] | ran[1])}"
        )

        # --- status snapshot + merge, byte-identical to the direct search.
        print(format_status(fleet_status(job, ttl=TTL),
                            summary=job.progress_summary()))
        merged = job.merge()
        print(merged.as_table())
        print(f"fleet merge identical to direct search: "
              f"{merged.rows == direct.rows}")


if __name__ == "__main__":
    main()
