#!/usr/bin/env python
"""Quickstart: lay out a 256-processor de Bruijn network with Θ(√n) lenses.

This is the paper's headline application in ~40 lines:

1. build the de Bruijn digraph ``B(2, 8)`` (256 processors, degree 2),
2. find the lens-minimising OTIS split (Corollary 4.4/4.6),
3. materialise the layout — an explicit assignment of every processor to two
   transmitters and two receivers of the optical plane,
4. verify it really is an isomorphism onto ``H(16, 32, 2)``,
5. compare its hardware bill of materials with the previously known
   ``OTIS(2, 256)`` layout (O(n) lenses).

Run with:  python examples/quickstart.py
"""

from repro.analysis.tables import format_table
from repro.graphs import de_bruijn, diameter
from repro.otis import HardwareModel, optimal_debruijn_layout
from repro.otis.layout import imase_itoh_layout


def main() -> None:
    d, D = 2, 8
    network = de_bruijn(d, D)
    print(f"Topology        : {network.name}, {network.num_vertices} processors, "
          f"degree {network.degree}, diameter {diameter(network)}")

    layout = optimal_debruijn_layout(d, D)
    print(f"Optimal layout  : OTIS({layout.p}, {layout.q}) "
          f"using {layout.num_lenses} lenses   [{layout.description}]")
    print(f"Layout verified : {layout.verify()}")

    # What does processor 5 (word 00000101) physically own?
    assignment = layout.node_assignment(5)
    print(f"Processor 5 word: {network.label_of(5)}")
    print(f"  transmitters  : {assignment.transmitters}")
    print(f"  receivers     : {assignment.receivers}")

    # Hardware comparison against the known O(n)-lens layout.
    model = HardwareModel()
    optimal_report = model.evaluate(layout)
    baseline_report = model.evaluate(imase_itoh_layout(d, d**D))
    rows = [
        {
            "layout": "Corollary 4.4 (this paper)",
            "p": optimal_report.p,
            "q": optimal_report.q,
            "lenses": optimal_report.num_lenses,
            "tx lens aperture (mm)": optimal_report.transmitter_lens_aperture_mm,
            "transceivers": optimal_report.num_transmitters,
        },
        {
            "layout": "Imase-Itoh (previously known)",
            "p": baseline_report.p,
            "q": baseline_report.q,
            "lenses": baseline_report.num_lenses,
            "tx lens aperture (mm)": baseline_report.transmitter_lens_aperture_mm,
            "transceivers": baseline_report.num_transmitters,
        },
    ]
    print()
    print(format_table(rows))
    saving = baseline_report.num_lenses / optimal_report.num_lenses
    print(f"\nLens saving: {saving:.1f}x  "
          f"(Θ(√n) = {optimal_report.num_lenses} vs O(n) = {baseline_report.num_lenses})")


if __name__ == "__main__":
    main()
