#!/usr/bin/env python
"""A gallery of the paper's isomorphisms, reproduced constructively.

Walks through Section 3 of the paper on concrete instances:

* Proposition 3.2 — ``B_sigma(d, D) ≅ B(d, D)`` with the explicit map ``W``,
* Proposition 3.3 / Figures 1–3 — ``B(2,3)``, ``RRK(2,8)`` and ``II(2,8)``
  are the same digraph,
* Example 3.3.1 / Figure 4 — the cyclic index permutation on ``Z_6`` and its
  conjugating permutation ``g``,
* Example 3.3.2 / Figure 5 — the non-cyclic case and its decomposition into
  conjunctions of de Bruijn digraphs with circuits,
* the count ``d!(D-1)!`` of alternative de Bruijn definitions.

Run with:  python examples/isomorphism_gallery.py
"""

from repro.core import (
    AlphabetDigraphSpec,
    count_alternative_definitions,
    debruijn_to_alphabet_isomorphism,
    debruijn_to_imase_itoh_isomorphism,
    g_permutation,
    prop_3_2_isomorphism,
)
from repro.core.components import decompose_non_cyclic
from repro.graphs import de_bruijn, imase_itoh, reddy_raghavan_kuhl
from repro.graphs.isomorphism import is_isomorphism
from repro.permutations import Permutation, complement, identity


def proposition_3_2() -> None:
    print("=== Proposition 3.2: permutation on the alphabet ===")
    d, D = 2, 4
    sigma = complement(d)
    from repro.core import b_sigma

    mapping = prop_3_2_isomorphism(d, D, sigma)
    ok = is_isomorphism(b_sigma(d, D, sigma), de_bruijn(d, D), mapping)
    print(f"W maps B_C({d},{D}) onto B({d},{D}) arc-for-arc: {ok}")
    print(f"W on the first eight vertices: {mapping[:8].tolist()}")


def figures_1_2_3() -> None:
    print("\n=== Figures 1-3: B(2,3), RRK(2,8), II(2,8) ===")
    B, RRK, II = de_bruijn(2, 3), reddy_raghavan_kuhl(2, 8), imase_itoh(2, 8)
    print(f"B(2,3) and RRK(2,8) are identical labelled digraphs: {B.same_arcs(RRK)}")
    mapping = debruijn_to_imase_itoh_isomorphism(2, 3)
    print(f"B(2,3) -> II(2,8) isomorphism (Prop 3.3): {mapping.tolist()}")
    print(f"verified: {is_isomorphism(B, II, mapping)}")


def example_3_3_1() -> None:
    print("\n=== Example 3.3.1 / Figure 4: a cyclic index permutation on Z_6 ===")
    f = Permutation([3, 4, 5, 2, 0, 1])
    g = g_permutation(f, 2)
    print(f"f = {f.as_tuple()}  (cyclic: {f.is_cyclic()})")
    print(f"g(i) = f^i(2) = {g.as_tuple()}   (paper: 2, 5, 1, 4, 0, 3)")
    spec = AlphabetDigraphSpec(d=2, D=6, f=f, sigma=identity(2), j=2)
    mapping = debruijn_to_alphabet_isomorphism(spec)
    ok = is_isomorphism(de_bruijn(2, 6), spec.build(), mapping)
    print(f"A(f, Id, 2) is isomorphic to B(2, 6): {ok}")


def example_3_3_2() -> None:
    print("\n=== Example 3.3.2 / Figure 5: a non-cyclic index permutation ===")
    spec = AlphabetDigraphSpec(
        d=2, D=3, f=Permutation([2, 1, 0]), sigma=identity(2), j=1
    )
    print(f"f = {spec.f.as_tuple()}  (cyclic: {spec.f.is_cyclic()})")
    for factor in decompose_non_cyclic(spec):
        print(
            f"  component {factor.vertices}: "
            f"B(2,{factor.debruijn_dimension}) (x) C_{factor.circuit_length} "
            f"(certified: {factor.certified})"
        )


def counting() -> None:
    print("\n=== d!(D-1)! alternative definitions of B(d, D) ===")
    for d, D in [(2, 3), (2, 8), (3, 4), (4, 6)]:
        print(f"  B({d},{D}): {count_alternative_definitions(d, D)} definitions")


def main() -> None:
    proposition_3_2()
    figures_1_2_3()
    example_3_3_1()
    example_3_3_2()
    counting()


if __name__ == "__main__":
    main()
