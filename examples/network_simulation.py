#!/usr/bin/env python
"""Simulate workloads on OTIS-laid-out networks (extension study A2).

The paper motivates de Bruijn-like topologies by the multihop optical
networks built on them.  This script uses the discrete-event simulator to
compare, for the same number of processors and the optical link model of the
OTIS hardware substitution:

* the de Bruijn digraph B(2, D) (the paper's layout target),
* the Kautz digraph of the same diameter (the largest OTIS digraph found by
  Table 1's search),
* a bidirectional ring (the low-tech baseline),

under uniform random traffic and one-to-all broadcast.

Run with:  python examples/network_simulation.py [D]
"""

import sys

from repro.analysis.tables import format_table
from repro.graphs import de_bruijn, diameter, kautz
from repro.graphs.generators import ring
from repro.otis import HardwareModel, optimal_debruijn_layout
from repro.simulation import LinkModel, run_broadcast, run_random_traffic


def main() -> None:
    D = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    d = 2
    n = d**D

    hardware = HardwareModel()
    link = LinkModel.from_hardware(hardware, message_bits=1024, rate_gbps=1.0)
    print(f"optical link model: latency {link.latency:.2f} ns, "
          f"transmission {link.transmission_time:.0f} ns per message")

    layout = optimal_debruijn_layout(d, D)
    print(f"B(2,{D}) optical layout: OTIS({layout.p},{layout.q}), "
          f"{layout.num_lenses} lenses, verified={layout.verify()}\n")

    topologies = {
        f"B(2,{D})": de_bruijn(d, D),
        f"K(2,{D})": kautz(d, D),
        f"ring({n})": ring(n),
    }

    rows = []
    for name, graph in topologies.items():
        traffic_stats = run_random_traffic(graph, 500, link=link, seed=42)
        broadcast_stats = run_broadcast(graph, root=0, link=link)
        rows.append(
            {
                "topology": name,
                "nodes": graph.num_vertices,
                "diameter": diameter(graph),
                "mean hops": traffic_stats.mean_hops,
                "mean latency (ns)": traffic_stats.mean_latency,
                "makespan (ns)": traffic_stats.makespan,
                "all-port bcast rounds": broadcast_stats["all_port_rounds"],
                "1-port bcast rounds": broadcast_stats["single_port_rounds"],
            }
        )
    print(format_table(rows))
    print("\nThe logarithmic-diameter digraphs deliver traffic in a fraction of"
          " the ring's hops while the OTIS layout keeps the optics at Θ(√n) lenses.")


if __name__ == "__main__":
    main()
