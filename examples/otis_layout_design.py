#!/usr/bin/env python
"""OTIS layout design space exploration for de Bruijn networks.

For each diameter ``D`` this script enumerates every power-of-``d`` OTIS split
``(p', q')`` with ``p' + q' - 1 = D`` (the candidates of Corollary 4.2), runs
the paper's O(D) cyclicity test on each, and prints the lens counts — showing
both Proposition 4.3 (the exactly balanced split never works for odd ``D>1``)
and Corollary 4.4 (the near-balanced split always works for even ``D``).
It then prints the lens-scaling comparison against the previously known
O(n)-lens layout.

Run with:  python examples/otis_layout_design.py [max_diameter]
"""

import sys

from repro.analysis.lens_count import lens_scaling_table
from repro.analysis.tables import format_table
from repro.core import enumerate_layout_splits, minimal_lens_split


def explore_diameter(d: int, D: int) -> None:
    print(f"\n=== B({d}, {D}) : {d**D} processors ===")
    rows = []
    for split in enumerate_layout_splits(d, D):
        rows.append(
            {
                "p'": split.p_prime,
                "q'": split.q_prime,
                "p": split.p,
                "q": split.q,
                "lenses": split.lenses,
                "isomorphic to B(d,D)?": "yes" if split.is_layout else "no",
            }
        )
    print(format_table(rows))
    best = minimal_lens_split(d, D)
    print(
        f"optimal split: (p', q') = ({best.p_prime}, {best.q_prime})  ->  "
        f"{best.lenses} lenses  (O(D^2) search, Corollary 4.6)"
    )


def main() -> None:
    max_diameter = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    d = 2
    for D in range(2, max_diameter + 1):
        explore_diameter(d, D)

    print("\n=== lens scaling: known O(n) layout vs Corollary 4.4/4.6 ===")
    print(lens_scaling_table(d, [D for D in range(2, max_diameter + 1, 2)]))


if __name__ == "__main__":
    main()
