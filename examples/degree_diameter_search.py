#!/usr/bin/env python
"""Regenerate Table 1: the largest OTIS digraphs H(p, q, 2) per diameter.

The paper's Section 4.3 reports, for degree 2 and diameters 8, 9 and 10, the
node counts near the optimum that admit an ``H(p, q, 2)`` of exactly that
diameter, together with all splits ``(p, q)`` achieving them.  This script
re-runs the exhaustive search and prints the measured rows next to the
paper's, flagging any disagreement.

By default only the node counts printed in the paper are tested (fast, a few
seconds).  Pass ``--full`` to sweep the whole range from the first printed row
up to the Kautz order, which reproduces the table including the *absence* of
intermediate rows (several minutes for diameter 10).

The script then demonstrates the **resumable sharded path** of
:mod:`repro.otis.sweep` on a small diameter-6 sweep: two shards run into one
chunk store, the sweep is "killed" by deleting a completed chunk file, and a
``--resume`` relaunch recomputes only that chunk (from the warm split-verdict
cache) before the merge reproduces the direct search rows exactly.  This is
the same machinery ``python -m repro sweep`` drives across hosts.

Run with:  python examples/degree_diameter_search.py [--full] [diameters...]
"""

import os
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.tables import format_table
from repro.otis.search import (
    PAPER_TABLE1,
    compare_with_paper,
    degree_diameter_search,
    table1_rows,
)
from repro.otis.sweep import (
    ChunkManifest,
    ChunkStore,
    SplitVerdictCache,
    merge_sweep,
    run_sweep,
)


def run_table1_blocks(diameters: list[int], full: bool) -> None:
    for D in diameters:
        print(f"\n=== Table 1, degree 2, diameter {D} "
              f"({'full sweep' if full else 'paper rows only'}) ===")
        start = time.time()
        result = table1_rows(D, printed_rows_only=not full)
        elapsed = time.time() - start
        print(result.as_table())
        print(f"[search took {elapsed:.1f} s]")

        if D in PAPER_TABLE1:
            report = compare_with_paper(result)
            rows = [
                {
                    "n": entry["n"],
                    "paper splits": entry["paper_splits"],
                    "measured splits": entry["measured_splits"],
                    "match": "yes" if entry["match"] else "NO",
                }
                for entry in report["rows"]
            ]
            print(format_table(rows))
            print(f"all printed rows reproduced: {report['all_match']}")


def run_resumable_demo() -> None:
    """Run → interrupt → resume → merge, on a small diameter-6 sweep."""
    print("\n=== Resumable sharded sweep (d=2, D=6, n=60..70) ===")
    direct = degree_diameter_search(2, 6, 60, 70)

    with tempfile.TemporaryDirectory() as tmp:
        store = ChunkStore(Path(tmp) / "chunks")
        cache_dir = Path(tmp) / "cache"
        manifest = ChunkManifest.build(2, 6, range(60, 71), chunk_size=5)
        print(f"manifest: {len(manifest.chunks)} chunks "
              f"(code version {manifest.code_version})")

        # Two shards — in production these run on different hosts sharing
        # the store directory; chunk ids are their only coordination.
        for index in range(2):
            outcome = run_sweep(manifest, store, shard=(index, 2), cache=cache_dir)
            print(f"shard {index}/2: ran {len(outcome['ran'])} chunks")

        # "Kill" the sweep: drop one completed chunk, as if the process died
        # before publishing it.  The merge refuses to produce a partial table.
        victim = manifest.chunks[1]
        os.unlink(store.path_for(victim))
        try:
            merge_sweep(manifest, store)
        except FileNotFoundError as error:
            print(f"merge before resume correctly fails: {error}")

        # Resume: completed chunks are skipped; the lost chunk is recomputed,
        # answered entirely from the warm split-verdict cache.
        cache = SplitVerdictCache(cache_dir, 2, 6)
        outcome = run_sweep(manifest, store, resume=True, cache=cache)
        print(f"resume: ran {len(outcome['ran'])} chunk(s), "
              f"skipped {len(outcome['skipped'])}, "
              f"cache hits {cache.hits}, misses {cache.misses}")

        merged = merge_sweep(manifest, store)
        print(merged.as_table())
        print(f"merged rows identical to direct search: "
              f"{merged.rows == direct.rows}")


def main() -> None:
    args = [a for a in sys.argv[1:]]
    full = "--full" in args
    diameters = [int(a) for a in args if a.isdigit()] or [8, 9, 10]

    run_table1_blocks(diameters, full)
    run_resumable_demo()


if __name__ == "__main__":
    main()
