#!/usr/bin/env python
"""Regenerate Table 1: the largest OTIS digraphs H(p, q, 2) per diameter.

The paper's Section 4.3 reports, for degree 2 and diameters 8, 9 and 10, the
node counts near the optimum that admit an ``H(p, q, 2)`` of exactly that
diameter, together with all splits ``(p, q)`` achieving them.  This script
re-runs the exhaustive search and prints the measured rows next to the
paper's, flagging any disagreement.

By default only the node counts printed in the paper are tested (fast, a few
seconds).  Pass ``--full`` to sweep the whole range from the first printed row
up to the Kautz order, which reproduces the table including the *absence* of
intermediate rows (several minutes for diameter 10).

Run with:  python examples/degree_diameter_search.py [--full] [diameters...]
"""

import sys
import time

from repro.analysis.tables import format_table
from repro.otis.search import PAPER_TABLE1, compare_with_paper, table1_rows


def main() -> None:
    args = [a for a in sys.argv[1:]]
    full = "--full" in args
    diameters = [int(a) for a in args if a.isdigit()] or [8, 9, 10]

    for D in diameters:
        print(f"\n=== Table 1, degree 2, diameter {D} "
              f"({'full sweep' if full else 'paper rows only'}) ===")
        start = time.time()
        result = table1_rows(D, printed_rows_only=not full)
        elapsed = time.time() - start
        print(result.as_table())
        print(f"[search took {elapsed:.1f} s]")

        if D in PAPER_TABLE1:
            report = compare_with_paper(result)
            rows = [
                {
                    "n": entry["n"],
                    "paper splits": entry["paper_splits"],
                    "measured splits": entry["measured_splits"],
                    "match": "yes" if entry["match"] else "NO",
                }
                for entry in report["rows"]
            ]
            print(format_table(rows))
            print(f"all printed rows reproduced: {report['all_match']}")


if __name__ == "__main__":
    main()
